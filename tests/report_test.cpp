// report::Model / report::render against crafted manifest fixtures: the
// degradation paths (missing artifact CSV, failed scenarios, non-finite
// numbers loaded back from JSON null) and the determinism contract.  The
// end-to-end golden check lives in ctest emask-report_golden; these tests
// pin the load/join/render semantics at the library level.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "report/html.hpp"
#include "report/model.hpp"
#include "report/svg.hpp"
#include "util/fsio.hpp"

namespace emask::report {
namespace {

namespace fs = std::filesystem;

/// One crafted scenario row for the fixture manifest.
struct Row {
  std::string id;
  std::string policy;
  std::string analysis = "energy";
  double energy_uj = 100.0;  // total over `encryptions`
  std::uint64_t encryptions = 10;
  bool success = true;
  bool null_energy = false;  // emit total_energy_uj (and metric) as null
  bool with_artifact = true;
};

std::string scenario_json(const Row& r) {
  const std::string energy =
      r.null_energy ? "null" : std::to_string(r.energy_uj);
  const std::string mean =
      r.null_energy
          ? "null"
          : std::to_string(r.energy_uj / static_cast<double>(r.encryptions));
  return "{\"id\": \"" + r.id + "\", \"cipher\": \"des\", \"policy\": \"" +
         r.policy + "\", \"analysis\": \"" + r.analysis +
         "\", \"noise_sigma_pj\": 0, \"traces\": 10, \"coupling_ff\": 0, "
         "\"seed\": \"0x0000000000000001\", \"result\": {\"encryptions\": " +
         std::to_string(r.encryptions) +
         ", \"total_cycles\": 1000, \"total_instructions\": 800, "
         "\"total_energy_uj\": " +
         energy + ", \"mean_uj\": " + mean +
         ", \"secured_count\": 4, \"program_instructions\": 80, "
         "\"metric\": " +
         mean + ", \"best_guess\": -1, \"true_value\": -1, \"success\": " +
         (r.success ? "true" : "false") +
         ", \"margin\": 0, \"cycles_over_threshold\": 0}}";
}

std::string by_policy_json(const std::string& policy, double mean,
                           double paper, double paper_baseline) {
  std::string row = "{\"policy\": \"" + policy +
                    "\", \"scenarios\": 1, \"mean_uj\": " +
                    std::to_string(mean) + ", \"ratio\": 1";
  if (paper > 0.0) {
    row += ", \"paper_uj\": " + std::to_string(paper);
    if (paper_baseline > 0.0) {
      row += ", \"paper_ratio\": " + std::to_string(paper / paper_baseline);
    }
  }
  return row + "}";
}

/// Builds a manifest document around the rows (merged format by default).
std::string manifest_json(const std::vector<Row>& rows, bool sharded = false,
                          bool with_references = true) {
  std::string doc = "{\"format\": \"";
  doc += sharded ? "emask-campaign-shard-manifest-v1"
                 : "emask-campaign-manifest-v1";
  doc += "\", \"campaign\": \"fixture\", \"spec_hash\": "
         "\"0011223344556677\", ";
  if (sharded) doc += "\"shard_index\": 1, \"shard_count\": 3, ";
  doc += "\"generator\": \"fixture\", \"seed\": \"0x0000000000000001\", "
         "\"key\": \"0x133457799BBCDFF1\", \"fixed_input\": "
         "\"0x0123456789ABCDEF\", \"window_begin\": 0, \"window_end\": "
         "1000, \"timings\": \"timings.json\", \"scenario_count\": " +
         std::to_string(rows.size()) + ", \"scenarios\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) doc += ", ";
    doc += scenario_json(rows[i]);
  }
  doc += "], \"rollup\": {\"total_encryptions\": 0, \"total_cycles\": 0, "
         "\"total_energy_uj\": 0, \"by_policy\": [";
  // One by_policy row per distinct policy, first appearance order, with the
  // fig12 paper references when requested.
  const std::vector<std::pair<std::string, double>> refs = {
      {"original", 46.4},
      {"selective", 52.6},
      {"naive_loadstore", 63.6},
      {"all_secure", 83.5}};
  std::vector<std::string> policies;
  for (const Row& r : rows) {
    bool seen = false;
    for (const std::string& p : policies) seen |= p == r.policy;
    if (!seen) policies.push_back(r.policy);
  }
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (i) doc += ", ";
    double paper = 0.0;
    for (const auto& [name, uj] : refs) {
      if (with_references && name == policies[i]) paper = uj;
    }
    doc += by_policy_json(policies[i], 10.0, paper,
                          with_references ? 46.4 : 0.0);
  }
  doc += "]}}";
  return doc;
}

/// Writes the manifest + per-scenario artifact CSVs into a fresh temp dir.
fs::path write_fixture(const std::string& tag, const std::vector<Row>& rows,
                       bool sharded = false) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("report_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string name =
      sharded ? "manifest.shard-1-of-3.json" : "manifest.json";
  {
    std::ofstream out = util::open_for_write((dir / name).string());
    out << manifest_json(rows, sharded);
  }
  for (const Row& r : rows) {
    if (!r.with_artifact) continue;
    const fs::path sub = dir / "scenarios" / r.id;
    fs::create_directories(sub);
    if (r.analysis == "energy") {
      std::ofstream out(sub / "breakdown.csv");
      out << "component,energy_uj\nalu,4\nmemory,3\nregisters,2\n";
    } else if (r.analysis == "tvla") {
      std::ofstream out(sub / "t_per_cycle.csv");
      out << "cycle,t\n0,0.5\n1,5.2\n2,1.1\n";
    } else {
      std::ofstream out(sub / "guesses.csv");
      out << "guess,peak\n0,0.1\n1,0.9\n";
    }
  }
  return dir;
}

std::vector<Row> fig12_rows() {
  return {{"0000-des-original-energy", "original", "energy", 120.0},
          {"0001-des-selective-energy", "selective", "energy", 136.0},
          {"0002-des-naive_loadstore-energy", "naive_loadstore", "energy",
           164.0},
          {"0003-des-all_secure-energy", "all_secure", "energy", 216.0}};
}

TEST(ReportModel, LoadsManifestAndRecomputesRollup) {
  const fs::path dir = write_fixture("basic", fig12_rows());
  const Model m = Model::load(dir.string());
  EXPECT_EQ(m.campaign, "fixture");
  EXPECT_EQ(m.spec_hash, "0011223344556677");
  EXPECT_EQ(m.manifest_name, "manifest.json");
  EXPECT_FALSE(m.sharded);
  ASSERT_EQ(m.scenarios.size(), 4u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.missing_artifacts, 0u);

  // The roll-up is recomputed from scenario results (mean 12.0 uJ for the
  // baseline), not copied from the manifest's own block (which says 10.0).
  ASSERT_EQ(m.rollup.size(), 4u);
  EXPECT_EQ(m.rollup[0].policy, compiler::Policy::kOriginal);
  EXPECT_NEAR(m.rollup[0].mean_uj, 12.0, 1e-12);
  EXPECT_NEAR(m.rollup[1].mean_uj, 13.6, 1e-12);
  EXPECT_NEAR(m.rollup[1].ratio, 13.6 / 12.0, 1e-12);

  // Paper references ride in from by_policy; normalization uses the
  // measured ratio on the paper's baseline scale.
  EXPECT_TRUE(m.rollup[3].has_reference);
  EXPECT_NEAR(m.rollup[3].paper_uj, 83.5, 1e-12);
  EXPECT_NEAR(m.rollup[3].paper_ratio, 83.5 / 46.4, 1e-12);
  EXPECT_NEAR(m.rollup[3].normalized_uj, (21.6 / 12.0) * 46.4, 1e-9);
}

TEST(ReportModel, MissingArtifactDegradesNotFails) {
  std::vector<Row> rows = fig12_rows();
  rows[2].with_artifact = false;
  const fs::path dir = write_fixture("missing_artifact", rows);
  const Model m = Model::load(dir.string());
  EXPECT_EQ(m.missing_artifacts, 1u);
  EXPECT_FALSE(m.scenarios[2].artifact_present);
  EXPECT_TRUE(m.scenarios[1].artifact_present);
  EXPECT_EQ(m.scenarios[2].artifact_path,
            "scenarios/0002-des-naive_loadstore-energy/breakdown.csv");

  const std::string html = render(m);
  EXPECT_NE(html.find("1 with missing artifacts"), std::string::npos);
  EXPECT_NE(html.find("Missing artifacts"), std::string::npos);
  EXPECT_NE(html.find(m.scenarios[2].artifact_path), std::string::npos);
}

TEST(ReportModel, FailedScenarioCountedAndCalledOut) {
  std::vector<Row> rows = fig12_rows();
  rows.push_back({"0004-des-selective-tvla", "selective", "tvla", 0.0, 10,
                  /*success=*/false});
  const fs::path dir = write_fixture("failed", rows);
  const Model m = Model::load(dir.string());
  EXPECT_EQ(m.failed, 1u);

  const std::string html = render(m);
  EXPECT_NE(html.find("1 failed"), std::string::npos);
  EXPECT_NE(html.find("Failed scenarios"), std::string::npos);
  EXPECT_NE(html.find("0004-des-selective-tvla"), std::string::npos);
}

TEST(ReportModel, LoadsShardManifestWithProvenance) {
  const fs::path dir = write_fixture("shard", fig12_rows(), /*sharded=*/true);
  const Model m = Model::load(dir.string());
  EXPECT_TRUE(m.sharded);
  EXPECT_EQ(m.shard_index, 1u);
  EXPECT_EQ(m.shard_count, 3u);
  EXPECT_EQ(m.manifest_name, "manifest.shard-1-of-3.json");

  const std::string html = render(m);
  EXPECT_NE(html.find("1 of 3"), std::string::npos);
  EXPECT_NE(html.find("unmerged"), std::string::npos);
}

TEST(ReportModel, RejectsDirectoryWithoutManifest) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "report_no_manifest";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_THROW((void)Model::load(dir.string()), ReportError);
}

TEST(ReportModel, RejectsAmbiguousShardManifests) {
  const fs::path dir = write_fixture("two_shards", fig12_rows(), true);
  {
    std::ofstream out(dir / "manifest.shard-2-of-3.json");
    out << manifest_json(fig12_rows(), true);
  }
  try {
    (void)Model::load(dir.string());
    FAIL() << "expected ReportError";
  } catch (const ReportError& e) {
    EXPECT_NE(std::string(e.what()).find("merge"), std::string::npos);
  }
}

TEST(ReportHtml, NonFiniteValuesRenderAsNa) {
  std::vector<Row> rows = fig12_rows();
  rows[1].null_energy = true;  // total_energy_uj + metric emitted as null
  const fs::path dir = write_fixture("nonfinite", rows);
  const Model m = Model::load(dir.string());
  ASSERT_TRUE(std::isnan(m.scenarios[1].result.total_energy_uj));

  const std::string html = render(m);
  EXPECT_NE(html.find("n/a"), std::string::npos);
  // The JSON null / C nan spellings must never leak into rendered values.
  EXPECT_EQ(html.find(">nan<"), std::string::npos);
  EXPECT_EQ(html.find(">null<"), std::string::npos);
  EXPECT_EQ(html.find(">inf<"), std::string::npos);
  EXPECT_EQ(html.find(">-nan<"), std::string::npos);
}

TEST(ReportHtml, RenderIsDeterministicAndSelfContained) {
  const fs::path dir = write_fixture("determinism", fig12_rows());
  const Model m1 = Model::load(dir.string());
  const Model m2 = Model::load(dir.string());
  const std::string a = render(m1);
  const std::string b = render(m2);
  EXPECT_EQ(a, b);

  // Self-containment: no external resources of any kind.  (The SVG xmlns
  // is a namespace identifier, not a fetched URL — strip it first.)
  std::string stripped = a;
  const std::string xmlns = "xmlns=\"http://www.w3.org/2000/svg\"";
  for (std::size_t pos = stripped.find(xmlns); pos != std::string::npos;
       pos = stripped.find(xmlns)) {
    stripped.erase(pos, xmlns.size());
  }
  EXPECT_EQ(stripped.find("<script"), std::string::npos);
  EXPECT_EQ(stripped.find("<link"), std::string::npos);
  EXPECT_EQ(stripped.find("http://"), std::string::npos);
  EXPECT_EQ(stripped.find("https://"), std::string::npos);
  EXPECT_EQ(stripped.find("src="), std::string::npos);
  EXPECT_EQ(stripped.find("@import"), std::string::npos);

  // The paper's Table 1 anchors render in the roll-up section.
  for (const char* ref : {"46.4", "52.6", "63.6", "83.5"}) {
    EXPECT_NE(a.find(ref), std::string::npos) << ref;
  }
}

TEST(ReportHtml, TitleOverrideAndEscaping) {
  const fs::path dir = write_fixture("title", fig12_rows());
  const Model m = Model::load(dir.string());
  RenderOptions opts;
  opts.title = "a <b> & \"c\"";
  const std::string html = render(m, opts);
  EXPECT_NE(html.find("a &lt;b&gt; &amp; &quot;c&quot;"), std::string::npos);
}

TEST(ReportHtml, WriteReportCreatesDirectoriesAndRoundTrips) {
  const fs::path dir = write_fixture("write", fig12_rows());
  const fs::path out = dir / "nested" / "deep" / "report.html";
  const std::size_t bytes = render_directory(dir.string(), out.string());
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(util::read_text_file(out.string()).size(), bytes);
}

TEST(ReportHtml, NumOrNa) {
  EXPECT_EQ(num_or_na(1.5), "1.5");
  EXPECT_EQ(num_or_na(46.4), "46.4");
  EXPECT_EQ(num_or_na(std::nan("")), "n/a");
  EXPECT_EQ(num_or_na(INFINITY), "n/a");
  EXPECT_EQ(num_or_na(-INFINITY), "n/a");
}

TEST(ReportSvg, BarChartRendersNaAtNanBars) {
  BarChartSpec spec;
  spec.width = 400;
  spec.height = 200;
  spec.groups = {"a", "b"};
  spec.series.push_back({"s", {1.0, std::nan("")}});
  const std::string svg = bar_chart(spec);
  EXPECT_NE(svg.find("n/a"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(ReportSvg, LineChartBreaksPolylineAtNonFinitePoints) {
  LineChartSpec spec;
  spec.width = 400;
  spec.height = 200;
  LineSeries s;
  s.label = "t";
  s.xs = {0.0, 1.0, 2.0, 3.0};
  s.ys = {1.0, std::nan(""), 2.0, 3.0};
  spec.series.push_back(s);
  const std::string svg = line_chart(spec);
  // The NaN gap forces two separate polylines.
  std::size_t count = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 2u);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace emask::report
