// End-to-end: the generated assembly DES, compiled under every masking
// policy, must produce bit-exact FIPS ciphertexts on the cycle-accurate
// pipeline — and the masking must actually flatten key-dependent energy.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "compiler/masking.hpp"
#include "core/masking_pipeline.hpp"
#include "des/des.hpp"
#include "util/rng.hpp"

namespace emask {
namespace {

TEST(DesOnPipeline, MatchesGoldenModelClassicVector) {
  const auto pipeline = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const core::EncryptionRun run =
      pipeline.run_des(0x133457799BBCDFF1ull, 0x0123456789ABCDEFull);
  EXPECT_TRUE(run.sim.halted);
  EXPECT_EQ(run.cipher, 0x85E813540F0AB405ull);
}

class DesPolicyTest : public ::testing::TestWithParam<compiler::Policy> {};

TEST_P(DesPolicyTest, MatchesGoldenModelOnRandomInputs) {
  const auto pipeline = core::MaskingPipeline::des(GetParam());
  util::Rng rng(0x5EED + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    const core::EncryptionRun run = pipeline.run_des(key, pt);
    EXPECT_EQ(run.cipher, des::encrypt_block(pt, key))
        << "key=" << key << " pt=" << pt;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DesPolicyTest,
                         ::testing::Values(compiler::Policy::kOriginal,
                                           compiler::Policy::kSelective,
                                           compiler::Policy::kNaiveLoadStore,
                                           compiler::Policy::kAllSecure),
                         [](const auto& info) {
                           return std::string(
                               compiler::policy_name(info.param));
                         });

TEST(DesOnPipeline, DecryptionProgramInvertsEncryption) {
  des::DesAsmOptions decrypt_opts;
  decrypt_opts.decrypt = true;
  const auto enc = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto dec = core::MaskingPipeline::des(compiler::Policy::kOriginal,
                                              energy::TechParams::smartcard_025um(),
                                              decrypt_opts);
  util::Rng rng(0xDEC);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    const std::uint64_t ct = enc.run_des(key, pt).cipher;
    EXPECT_EQ(ct, des::encrypt_block(pt, key));
    EXPECT_EQ(dec.run_des(key, ct).cipher, pt);
  }
}

TEST(DesOnPipeline, MaskedDecryptionAlsoFlat) {
  des::DesAsmOptions decrypt_opts;
  decrypt_opts.decrypt = true;
  const auto dec = core::MaskingPipeline::des(compiler::Policy::kSelective,
                                              energy::TechParams::smartcard_025um(),
                                              decrypt_opts);
  EXPECT_TRUE(dec.mask_result().slice.diagnostics.empty());
  const std::uint64_t ct = 0x85E813540F0AB405ull;
  const std::uint64_t k1 = 0x133457799BBCDFF1ull;
  const std::uint64_t k2 = k1 ^ (1ull << 62);
  const auto diff =
      dec.run_des(k1, ct).trace.difference(dec.run_des(k2, ct).trace);
  const auto body = diff.slice(0, static_cast<std::size_t>(
                                      static_cast<double>(diff.size()) * 0.9));
  EXPECT_EQ(body.max_abs(), 0.0);
}

TEST(DesOnPipeline, SelectiveSliceHasNoProtectionHoles) {
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  for (const auto& d : pipeline.mask_result().slice.diagnostics) {
    ADD_FAILURE() << "diagnostic: " << d.message;
  }
  // A substantial but proper subset of the program is secured.
  const std::size_t secured = pipeline.mask_result().secured_count;
  EXPECT_GT(secured, 20u);
  EXPECT_LT(secured, pipeline.program().text.size());
}

TEST(DesOnPipeline, CycleCountIsDeterministic) {
  const auto pipeline = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto r1 = pipeline.run_des(1, 2);
  const auto r2 = pipeline.run_des(1, 2);
  EXPECT_EQ(r1.sim.cycles, r2.sim.cycles);
  EXPECT_EQ(r1.trace.samples(), r2.trace.samples());
}

TEST(DesOnPipeline, CycleCountIsKeyIndependent) {
  // No secret-dependent control flow: every key/plaintext takes exactly the
  // same number of cycles (timing-attack immunity of the code layout).
  const auto pipeline = core::MaskingPipeline::des(compiler::Policy::kOriginal);
  util::Rng rng(42);
  const std::uint64_t cycles = pipeline.run_des(rng.next_u64(), 0).sim.cycles;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pipeline.run_des(rng.next_u64(), rng.next_u64()).sim.cycles,
              cycles);
  }
}

TEST(DesOnPipeline, MaskingFlattensKeyDifferential) {
  // Two keys differing in one effective bit, same plaintext: before masking
  // the differential trace has structure; after (selective) masking it is
  // identically zero everywhere except the declassified output permutation
  // — which carries only ciphertext-equivalent (public) data, and the two
  // ciphertexts legitimately differ (paper Figs. 8 vs 9, which show the
  // first round; Fig. 2(b) leaves the output permutation insecure).
  const std::uint64_t k1 = 0x133457799BBCDFF1ull;
  const std::uint64_t k2 = k1 ^ (1ull << 62);
  const std::uint64_t pt = 0x0123456789ABCDEFull;

  const auto original =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto d_orig = original.run_des(k1, pt)
                          .trace.difference(original.run_des(k2, pt).trace);
  EXPECT_GT(d_orig.max_abs(), 0.0);

  const auto masked =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  const auto d_mask = masked.run_des(k1, pt)
                          .trace.difference(masked.run_des(k2, pt).trace);
  // Everything through round 16 (≈95% of the run) is exactly flat.
  const auto body = d_mask.slice(0, static_cast<std::size_t>(
                                        static_cast<double>(d_mask.size()) *
                                        0.95));
  EXPECT_EQ(body.max_abs(), 0.0);
  // The output permutation differs — but only because the public
  // ciphertexts differ; an attacker learns nothing beyond the ciphertext.
  EXPECT_GT(d_mask.slice(body.size(), d_mask.size()).max_abs(), 0.0);
}

TEST(DesOnPipeline, MaskingLeavesOnlyPlaintextPermutationDifference) {
  // Two plaintexts, same key: after masking, differences remain only in the
  // (unprotected) initial permutation prefix (paper Figs. 10 vs 11).
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  const auto r1 = masked.run_des(key, 0x0123456789ABCDEFull);
  const auto r2 = masked.run_des(key, 0xFEDCBA9876543210ull);
  const auto diff = r1.trace.difference(r2.trace);
  EXPECT_GT(diff.max_abs(), 0.0);  // the initial permutation still differs
  // But the tail (the 16 secured rounds) is flat: find the last nonzero.
  std::size_t last_nonzero = 0;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    if (diff[i] != 0.0) last_nonzero = i;
  }
  // The initial permutation is the first ~1.5% of the run; everything
  // after it (rounds + output permutation, which only sees data equal to
  // the public cipher... which differs!) — the output portion may differ
  // too, since the ciphertexts differ.  What must be flat is the middle:
  // assert some nonzero exists before 10% and the rounds portion is mostly
  // zero by energy mass.
  double mid_mass = 0.0;
  const auto begin = static_cast<std::size_t>(diff.size() * 0.10);
  const auto end = static_cast<std::size_t>(diff.size() * 0.90);
  for (std::size_t i = begin; i < end; ++i) mid_mass += std::abs(diff[i]);
  EXPECT_EQ(mid_mass, 0.0) << "secured rounds leak plaintext-dependent energy";
  EXPECT_GE(last_nonzero, end);  // output permutation differs (public data)
}

TEST(DesOnPipeline, TotalEnergyOrderingMatchesPaper) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const std::uint64_t pt = 0x0123456789ABCDEFull;
  const double original =
      core::MaskingPipeline::des(compiler::Policy::kOriginal)
          .run_des(key, pt)
          .total_uj();
  const double selective =
      core::MaskingPipeline::des(compiler::Policy::kSelective)
          .run_des(key, pt)
          .total_uj();
  const double naive =
      core::MaskingPipeline::des(compiler::Policy::kNaiveLoadStore)
          .run_des(key, pt)
          .total_uj();
  const double all =
      core::MaskingPipeline::des(compiler::Policy::kAllSecure)
          .run_des(key, pt)
          .total_uj();
  EXPECT_LT(original, selective);
  EXPECT_LT(selective, naive);
  EXPECT_LT(naive, all);
  // Headline claim: selective masking overhead is ~83% below full dual-rail
  // (paper: 52.6 uJ vs 83.5 uJ over a 46.4 uJ baseline).
  const double saving = 1.0 - (selective - original) / (all - original);
  EXPECT_NEAR(saving, 0.83, 0.04) << "selective=" << selective
                                  << " all=" << all;
  // Relative costs match the paper's in-text table.
  EXPECT_NEAR(selective / original, 52.6 / 46.4, 0.03);
  EXPECT_NEAR(all / original, 83.5 / 46.4, 0.05);
  EXPECT_NEAR(naive / original, 63.6 / 46.4, 0.08);
}

}  // namespace
}  // namespace emask
