// Processor energy model: maskable structures, per-component accounting,
// and the central security property — secure activity has data-independent
// energy.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "energy/activity.hpp"
#include "energy/components.hpp"
#include "energy/maskable.hpp"
#include "energy/model.hpp"
#include "energy/params.hpp"
#include "util/rng.hpp"

namespace emask::energy {
namespace {

TEST(TechParams, LineEnergyIsCV2) {
  TechParams p;
  EXPECT_NEAR(p.line_energy(1e-12) * 1e12, 6.25, 1e-9);  // paper example
}

TEST(MaskableBus, SecureTransferConstantAndResidueFree) {
  const TechParams p;
  MaskableBus bus(32, p.line_energy(100e-15));
  util::Rng rng(1);
  const double secure = bus.transfer(rng.next_u32(), true);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(bus.transfer(rng.next_u32(), true), secure);
  }
  // After a secure transfer the lines are left pre-charged: the following
  // normal transfer has no rising edges, whatever the secure value was.
  EXPECT_DOUBLE_EQ(bus.transfer(0x12345678u, false), 0.0);
}

TEST(MaskableBus, NormalTransferDependsOnHistory) {
  const TechParams p;
  MaskableBus bus(32, p.line_energy(100e-15));
  (void)bus.transfer(0, false);
  const double e1 = bus.transfer(0xFF, false);
  (void)bus.transfer(0, false);
  (void)bus.transfer(0xFF, false);
  const double e2 = bus.transfer(0xFF00, false);  // 8 rising from 0xFF
  EXPECT_DOUBLE_EQ(e1, e2);
  EXPECT_GT(e1, 0.0);
}

TEST(MaskableBus, CouplingLeaksThroughSecureTransfers) {
  // The ablation of the paper's conclusion: with adjacent-line coupling,
  // secure transfers are no longer data-independent.
  const TechParams p;
  MaskableBus coupled(32, p.line_energy(100e-15), p.line_energy(20e-15));
  const double e1 = coupled.transfer(0x00000000u, true);  // all-equal bits
  const double e2 = coupled.transfer(0x55555555u, true);  // alternating bits
  EXPECT_GT(e1, e2);

  MaskableBus uncoupled(32, p.line_energy(100e-15));
  EXPECT_DOUBLE_EQ(uncoupled.transfer(0x00000000u, true),
                   uncoupled.transfer(0x55555555u, true));
}

TEST(MaskableBus, CouplingChargesOpposingNormalTransitions) {
  const TechParams p;
  const double unit = p.line_energy(10e-15);
  MaskableBus bus(32, 0.0, unit);  // isolate the coupling term
  (void)bus.transfer(0b01u, false);
  // 0b01 -> 0b10: line0 falls while line1 rises (|delta| sum = 2), plus
  // line1-line2 boundary (rise vs quiet = 1): 3 events.
  EXPECT_DOUBLE_EQ(bus.transfer(0b10u, false), 3 * unit);
  // No transitions: no coupling energy.
  EXPECT_DOUBLE_EQ(bus.transfer(0b10u, false), 0.0);
}

// Regression: the instruction bus is 33 lines wide (32-bit encoding plus
// the secure bit), but the transfer path used to truncate values to 32
// bits, so line 32 — the one line whose toggles encode the secure/normal
// instruction boundary — never drew energy.
TEST(MaskableBus, ThirtyThirdLineCarriesEnergy) {
  const TechParams p;
  const double unit = p.line_energy(100e-15);
  MaskableBus bus(33, unit);
  (void)bus.transfer(0, false);
  EXPECT_DOUBLE_EQ(bus.transfer(1ull << 32, false), unit);  // bit 32 rises
  (void)bus.transfer(0, false);
  // Lines beyond the declared width are still masked off.
  EXPECT_DOUBLE_EQ(bus.transfer(1ull << 33, false), 0.0);
}

TEST(MaskableLatch, SecureWriteConstant) {
  const TechParams p;
  const MaskableLatch latch(p.line_energy(p.c_latch_bit));
  util::Rng rng(2);
  const double secure = latch.write(rng.next_u64(), 64, true);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(latch.write(rng.next_u64(), 64, true), secure);
  }
  EXPECT_DOUBLE_EQ(secure, 64 * p.line_energy(p.c_latch_bit));
}

TEST(MaskableLatch, NormalWriteFollowsPopcount) {
  const TechParams p;
  const MaskableLatch latch(p.line_energy(p.c_latch_bit));
  EXPECT_DOUBLE_EQ(latch.write(0, 64, false), 0.0);
  EXPECT_DOUBLE_EQ(latch.write(0xF, 64, false),
                   4 * p.line_energy(p.c_latch_bit));
  // Bits beyond the declared width are ignored.
  EXPECT_DOUBLE_EQ(latch.write(0xF00000000ull, 32, false), 0.0);
}

TEST(DynamicUnit, SecureConstantNormalValueDependent) {
  const TechParams p;
  const DynamicUnit adder(p.line_energy(p.c_adder_node), p.e_unit_base);
  util::Rng rng(3);
  const double secure = adder.evaluate(rng.next_u32(), true);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(adder.evaluate(rng.next_u32(), true), secure);
  }
  EXPECT_LT(adder.evaluate(0x1, false), adder.evaluate(0xFFFF, false));
}

// ---- Whole-model accounting ----

CycleActivity idle_cycle() { return CycleActivity{}; }

TEST(ProcessorModel, IdleCycleCostsOnlyClock) {
  ProcessorEnergyModel m;
  const double e = m.cycle(idle_cycle());
  EXPECT_DOUBLE_EQ(e, m.params().e_clock_tree);
  EXPECT_DOUBLE_EQ(m.breakdown().get(Component::kClockTree), e);
  EXPECT_DOUBLE_EQ(m.breakdown().get(Component::kDecode), 0.0);
}

TEST(ProcessorModel, CycleEnergyEqualsBreakdownDelta) {
  ProcessorEnergyModel m;
  util::Rng rng(4);
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    CycleActivity a;
    a.fetch = true;
    a.fetch_bits = rng.next_u64() & 0x1FFFFFFFFull;
    a.decode = true;
    a.rf_reads = 2;
    a.ex.valid = true;
    a.ex.unit = isa::FuncUnit::kAdder;
    a.ex.result = rng.next_u32();
    a.mem.read = (i % 3) == 0;
    a.mem.address = rng.next_u32() & ~3u;
    a.mem.data = rng.next_u32();
    a.rf_write = true;
    a.id_ex = LatchWrite{true, false, rng.next_u64(), 64};
    sum += m.cycle(a);
  }
  EXPECT_NEAR(sum, m.total_joules(), 1e-18);
}

TEST(ProcessorModel, SecureMemCycleIsDataIndependent) {
  // Two models fed identical activity except for the (secure) memory data
  // and address values must report identical energy.
  ProcessorEnergyModel m1, m2;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    CycleActivity a1, a2;
    a1.mem.read = a2.mem.read = true;
    a1.mem.secure = a2.mem.secure = true;
    a1.mem.address = rng.next_u32() & ~3u;
    a2.mem.address = rng.next_u32() & ~3u;
    a1.mem.data = rng.next_u32();
    a2.mem.data = rng.next_u32();
    EXPECT_DOUBLE_EQ(m1.cycle(a1), m2.cycle(a2));
  }
}

TEST(ProcessorModel, NormalMemCycleIsDataDependent) {
  ProcessorEnergyModel m1, m2;
  CycleActivity a1, a2;
  a1.mem.read = a2.mem.read = true;
  a1.mem.address = a2.mem.address = 0x1000;
  a1.mem.data = 0x0;
  a2.mem.data = 0xFFFFFFFFu;
  EXPECT_LT(m1.cycle(a1), m2.cycle(a2));
}

TEST(ProcessorModel, SecureExecuteIsDataIndependentPerUnit) {
  for (const isa::FuncUnit unit :
       {isa::FuncUnit::kAdder, isa::FuncUnit::kLogic, isa::FuncUnit::kShifter,
        isa::FuncUnit::kXorUnit}) {
    ProcessorEnergyModel m1, m2;
    util::Rng rng(6);
    // Warm both XOR circuits identically (one secure cycle).
    for (ProcessorEnergyModel* m : {&m1, &m2}) {
      CycleActivity w;
      w.ex.valid = true;
      w.ex.unit = unit;
      w.ex.secure = true;
      w.ex.a = 1;
      w.ex.b = 2;
      w.ex.result = 3;
      (void)m->cycle(w);
    }
    for (int i = 0; i < 50; ++i) {
      CycleActivity a1, a2;
      for (auto* a : {&a1, &a2}) {
        a->ex.valid = true;
        a->ex.unit = unit;
        a->ex.secure = true;
      }
      a1.ex.a = rng.next_u32();
      a1.ex.b = rng.next_u32();
      a1.ex.result = a1.ex.a ^ a1.ex.b;
      a2.ex.a = rng.next_u32();
      a2.ex.b = rng.next_u32();
      a2.ex.result = a2.ex.a ^ a2.ex.b;
      EXPECT_DOUBLE_EQ(m1.cycle(a1), m2.cycle(a2))
          << "unit " << static_cast<int>(unit);
    }
  }
}

TEST(ProcessorModel, SecureLatchWritesAreDataIndependent) {
  ProcessorEnergyModel m1, m2;
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    CycleActivity a1, a2;
    a1.id_ex = LatchWrite{true, true, rng.next_u64(), 64};
    a2.id_ex = LatchWrite{true, true, rng.next_u64(), 64};
    EXPECT_DOUBLE_EQ(m1.cycle(a1), m2.cycle(a2));
  }
}

TEST(ProcessorModel, XorUnitMatchesPaperConstants) {
  // Secure XOR ~0.6 pJ steady-state; normal averages ~0.3 pJ.
  ProcessorEnergyModel m;
  util::Rng rng(8);
  auto xor_cycle = [&](bool secure) {
    CycleActivity a;
    a.ex.valid = true;
    a.ex.unit = isa::FuncUnit::kXorUnit;
    a.ex.secure = secure;
    a.ex.a = rng.next_u32();
    a.ex.b = rng.next_u32();
    a.ex.result = a.ex.a ^ a.ex.b;
    return m.cycle(a) - m.params().e_clock_tree;
  };
  (void)xor_cycle(true);  // warm up
  EXPECT_NEAR(xor_cycle(true) * 1e12, 0.6, 0.01);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += xor_cycle(false);
  EXPECT_NEAR(sum / n * 1e12, 0.3, 0.02);
}

TEST(ProcessorModel, SecureBitTogglesInstrBusLine) {
  // Two fresh models fetch words identical except for the secure bit
  // (fetch_bits bit 32).  The extra rising line costs one instruction-bus
  // line charge plus one coupling event at the line-31/32 boundary —
  // before the 33rd-line fix the two cycles cost exactly the same.
  ProcessorEnergyModel m1, m2;
  CycleActivity a1, a2;
  a1.fetch = a2.fetch = true;
  a1.fetch_bits = 0x12345678ull;
  a2.fetch_bits = 0x12345678ull | (1ull << 32);
  const double e1 = m1.cycle(a1);
  const double e2 = m2.cycle(a2);
  const TechParams& p = m1.params();
  EXPECT_NEAR(e2 - e1,
              p.line_energy(p.c_instr_bus_line) +
                  p.line_energy(p.c_bus_coupling),
              1e-18);
  EXPECT_GT(m2.breakdown().get(Component::kInstrBus),
            m1.breakdown().get(Component::kInstrBus));
}

TEST(ProcessorModel, DummyLoadChargedPerSecureWriteback) {
  ProcessorEnergyModel m;
  CycleActivity a;
  a.rf_write = true;
  a.wb_secure = true;
  (void)m.cycle(a);
  EXPECT_DOUBLE_EQ(m.breakdown().get(Component::kDummyLoad),
                   m.params().e_dummy_load);
}

TEST(Breakdown, TotalSumsComponents) {
  Breakdown b;
  b.add(Component::kAdder, 1.0);
  b.add(Component::kDataBus, 2.5);
  b.add(Component::kAdder, 0.5);
  EXPECT_DOUBLE_EQ(b.get(Component::kAdder), 1.5);
  EXPECT_DOUBLE_EQ(b.total(), 4.0);
  b.clear();
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(Components, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    const auto n = component_name(static_cast<Component>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(names.insert(n).second) << n;
  }
}

}  // namespace
}  // namespace emask::energy
