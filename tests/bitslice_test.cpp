// Bitsliced backend equivalence: every sliced primitive, hypothesis
// generator, and energy kernel is checked bit-for-bit against the scalar
// path it replaces — the correctness story behind making bitslice the
// default campaign backend.  Suites are prefixed "Bitslice" so the TSan CI
// job picks them up alongside the Adversary suites.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/collision.hpp"
#include "analysis/cpa.hpp"
#include "analysis/dpa.hpp"
#include "analysis/mlpa.hpp"
#include "analysis/trace.hpp"
#include "bitslice/des_round1.hpp"
#include "bitslice/hamming.hpp"
#include "bitslice/providers.hpp"
#include "bitslice/slice.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "des/des.hpp"
#include "energy/kernels.hpp"
#include "energy/maskable.hpp"
#include "util/rng.hpp"

namespace emask::bitslice {
namespace {

// ---- slice.hpp primitives ----

TEST(BitsliceSlice, TransposeMatchesNaiveGather) {
  util::Rng rng(0xB175);
  Word a[64];
  for (auto& w : a) w = rng.next_u64();
  Word expected[64];
  for (int b = 0; b < 64; ++b) {
    Word plane = 0;
    for (int l = 0; l < 64; ++l) plane |= ((a[l] >> b) & 1ull) << l;
    expected[b] = plane;
  }
  transpose64(a);
  for (int b = 0; b < 64; ++b) EXPECT_EQ(a[b], expected[b]) << "plane " << b;
}

TEST(BitsliceSlice, TransposeIsAnInvolution) {
  util::Rng rng(0xB176);
  Word a[64];
  Word original[64];
  for (int i = 0; i < 64; ++i) original[i] = a[i] = rng.next_u64();
  transpose64(a);
  transpose64(a);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], original[i]);
}

TEST(BitsliceSlice, LaneIndexPlanesEncodeTheLaneIndex) {
  for (int i = 0; i < 6; ++i) {
    for (int g = 0; g < 64; ++g) {
      EXPECT_EQ((kLaneIndex[i] >> g) & 1ull,
                static_cast<std::uint64_t>((g >> i) & 1))
          << "plane " << i << " lane " << g;
    }
  }
}

TEST(BitsliceSlice, EvalTtMatchesTableLookup) {
  // Every lane evaluates a different input (lane = input via kLaneIndex),
  // for several truth-table sizes and random functions.
  util::Rng rng(0xB177);
  for (const int n : {1, 2, 3, 4, 5, 6}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint64_t tt =
          n == 6 ? rng.next_u64() : rng.next_u64() & ((1ull << (1 << n)) - 1);
      const Word out = eval_tt(tt, kLaneIndex.data(), n);
      for (int lane = 0; lane < 64; ++lane) {
        const int x = lane & ((1 << n) - 1);
        EXPECT_EQ((out >> lane) & 1ull, (tt >> x) & 1ull)
            << "n=" << n << " lane=" << lane;
      }
    }
  }
}

TEST(BitsliceSlice, Hamming4MatchesPopcount) {
  util::Rng rng(0xB178);
  for (int trial = 0; trial < 16; ++trial) {
    Word o[4];
    for (auto& w : o) w = rng.next_u64();
    Word weight[3];
    hamming4_planes(o, weight);
    for (int lane = 0; lane < 64; ++lane) {
      int expected = 0;
      for (const Word w : o) expected += static_cast<int>((w >> lane) & 1);
      EXPECT_EQ(decode_weight(weight, lane), expected) << "lane " << lane;
    }
  }
}

// ---- des_round1.hpp hypothesis generators ----

TEST(BitsliceDesRound1, TruthTablesMatchSboxLookup) {
  for (int s = 0; s < 8; ++s) {
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t tt = sbox_truth_table(s, b);
      for (int x = 0; x < 64; ++x) {
        EXPECT_EQ((tt >> x) & 1ull,
                  static_cast<std::uint64_t>(
                      (des::sbox_lookup(s, static_cast<std::uint8_t>(x)) >> b) &
                      1))
            << "sbox " << s << " bit " << b << " x " << x;
      }
    }
  }
}

TEST(BitsliceDesRound1, SboxPlanesEvaluateAllLanesAtOnce) {
  // Lane x carries input x: the output planes must reproduce the table.
  for (int s = 0; s < 8; ++s) {
    Word out[4];
    sbox_planes(s, kLaneIndex.data(), out);
    for (int x = 0; x < 64; ++x) {
      int value = 0;
      for (int b = 0; b < 4; ++b) {
        value |= static_cast<int>((out[b] >> x) & 1ull) << b;
      }
      EXPECT_EQ(value, des::sbox_lookup(s, static_cast<std::uint8_t>(x)))
          << "sbox " << s << " x " << x;
    }
  }
}

TEST(BitsliceDesRound1, RoundOneSixMatchesGoldenModel) {
  util::Rng rng(0xB179);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t pt = rng.next_u64();
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ(round1_six(pt, s), des::round1_sbox_input(pt, s))
          << "sbox " << s;
    }
  }
}

TEST(BitsliceDesRound1, CpaRowMatchesScalarWeights) {
  for (int s = 0; s < 8; ++s) {
    for (int six = 0; six < 64; ++six) {
      std::array<int, 64> row{};
      cpa_hypothesis_row(s, static_cast<std::uint8_t>(six), row);
      for (int g = 0; g < 64; ++g) {
        EXPECT_EQ(row[g],
                  std::popcount(static_cast<unsigned>(des::sbox_lookup(
                      s, static_cast<std::uint8_t>(six ^ g)))))
            << "sbox " << s << " six " << six << " guess " << g;
      }
    }
  }
}

TEST(BitsliceDesRound1, DpaRowMatchesScalarBits) {
  for (int s = 0; s < 8; ++s) {
    for (int bit = 0; bit < 4; ++bit) {  // 0 = MSB, DpaAttack convention
      for (int six = 0; six < 64; ++six) {
        std::array<int, 64> row{};
        dpa_hypothesis_row(s, bit, static_cast<std::uint8_t>(six), row);
        for (int g = 0; g < 64; ++g) {
          EXPECT_EQ(row[g],
                    (des::sbox_lookup(s, static_cast<std::uint8_t>(six ^ g)) >>
                     (3 - bit)) &
                        1)
              << "sbox " << s << " bit " << bit << " six " << six;
        }
      }
    }
  }
}

TEST(BitsliceDesRound1, BlockModeMatchesPredictWeight) {
  util::Rng rng(0xB17A);
  std::uint64_t pts[64];
  for (auto& pt : pts) pt = rng.next_u64();
  for (int s = 0; s < 8; ++s) {
    std::array<std::array<int, 64>, 64> matrix{};
    cpa_hypothesis_block(s, pts, matrix);
    for (int p = 0; p < 64; ++p) {
      for (int g = 0; g < 64; ++g) {
        EXPECT_EQ(matrix[p][g], analysis::CpaAttack::predict_weight(pts[p], s, g))
            << "sbox " << s << " pt " << p << " guess " << g;
      }
    }
  }
}

TEST(BitsliceDesRound1, SelectionParityPlaneMatchesScalarParity) {
  for (int mask = 0; mask < 64; ++mask) {
    const Word plane = selection_parity_plane(mask);
    for (int e = 0; e < 64; ++e) {
      EXPECT_EQ((plane >> e) & 1ull,
                static_cast<std::uint64_t>(std::popcount(
                                               static_cast<unsigned>(mask & e)) &
                                           1))
          << "mask " << mask << " e " << e;
    }
  }
}

// ---- hamming.hpp energy kernels ----

TEST(BitsliceKernels, CouplingEventsMatchesScalarExhaustively) {
  // Every (last, value) pair on narrow buses — all nine delta cases per
  // adjacent pair are covered many times over.
  for (const int width : {1, 2, 3, 5, 8}) {
    const std::uint64_t limit = 1ull << width;
    for (std::uint64_t last = 0; last < limit; ++last) {
      for (std::uint64_t value = 0; value < limit; ++value) {
        EXPECT_EQ(coupling_events(last, value, width),
                  coupling_events_scalar(last, value, width))
            << "width " << width << " last " << last << " value " << value;
      }
    }
  }
}

TEST(BitsliceKernels, CouplingEventsMatchesScalarOnWideBuses) {
  util::Rng rng(0xB17B);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t last = rng.next_u64();
    const std::uint64_t value = rng.next_u64();
    for (const int width : {32, 33, 64}) {
      const std::uint64_t mask =
          width >= 64 ? ~0ull : ((1ull << width) - 1ull);
      EXPECT_EQ(coupling_events(last & mask, value & mask, width),
                coupling_events_scalar(last & mask, value & mask, width))
          << "width " << width;
    }
  }
}

TEST(BitsliceKernels, SecureOpposingMatchesScalar) {
  for (const int width : {1, 2, 3, 5, 8}) {
    for (std::uint64_t value = 0; value < (1ull << width); ++value) {
      EXPECT_EQ(secure_opposing(value, width),
                secure_opposing_scalar(value, width))
          << "width " << width << " value " << value;
    }
  }
  util::Rng rng(0xB17C);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t v = rng.next_u64();
    EXPECT_EQ(secure_opposing(v & 0x1FFFFFFFFull, 33),
              secure_opposing_scalar(v & 0x1FFFFFFFFull, 33));
    EXPECT_EQ(secure_opposing(v, 64), secure_opposing_scalar(v, 64));
  }
}

// Restores the process-wide energy kernel backend on scope exit.
class BackendGuard {
 public:
  BackendGuard() : saved_(energy::hamming_backend()) {}
  ~BackendGuard() { energy::set_hamming_backend(saved_); }

 private:
  energy::HammingBackend saved_;
};

TEST(BitsliceKernels, BusEnergiesIdenticalAcrossBackends) {
  const BackendGuard guard;
  util::Rng rng(0xB17D);
  std::vector<std::uint64_t> values;
  std::vector<bool> secure;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.next_u64());
    secure.push_back((rng.next_u32() & 3) == 0);
  }
  for (const int width : {32, 33}) {
    auto capture = [&](energy::HammingBackend backend) {
      energy::set_hamming_backend(backend);
      energy::MaskableBus bus(width, 6.25e-12, 1.25e-12);  // coupling on
      std::vector<double> energies;
      for (std::size_t i = 0; i < values.size(); ++i) {
        energies.push_back(bus.transfer(values[i], secure[i]));
      }
      return energies;
    };
    const auto scalar = capture(energy::HammingBackend::kScalar);
    const auto sliced = capture(energy::HammingBackend::kBitslice);
    ASSERT_EQ(scalar.size(), sliced.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      // Exact equality: same integer event count times the same constant.
      EXPECT_EQ(scalar[i], sliced[i]) << "width " << width << " step " << i;
    }
  }
}

TEST(BitsliceKernels, VerifyBackendAcceptsMatchingKernels) {
  const BackendGuard guard;
  energy::set_hamming_backend(energy::HammingBackend::kVerify);
  util::Rng rng(0xB17E);
  energy::MaskableBus bus(33, 6.25e-12, 1.25e-12);
  for (int i = 0; i < 200; ++i) {
    (void)bus.transfer(rng.next_u64(), (i & 7) == 0);  // aborts on mismatch
  }
  EXPECT_EQ(energy::hamming_backend(), energy::HammingBackend::kVerify);
}

TEST(BitsliceKernels, BackendNamesParse) {
  EXPECT_EQ(energy::hamming_backend_from_name("scalar"),
            energy::HammingBackend::kScalar);
  EXPECT_EQ(energy::hamming_backend_from_name("bitslice"),
            energy::HammingBackend::kBitslice);
  EXPECT_EQ(energy::hamming_backend_from_name("verify"),
            energy::HammingBackend::kVerify);
  EXPECT_THROW((void)energy::hamming_backend_from_name("psychic"),
               std::invalid_argument);
}

// ---- providers.hpp: attack-level equivalence ----

// Feeds the identical (plaintext, trace) stream to a scalar attack and a
// provider-backed one; both must produce *exactly* the same result object.
struct Stream {
  std::vector<std::uint64_t> plaintexts;
  std::vector<analysis::Trace> traces;

  explicit Stream(std::uint64_t seed, int count = 48, int cycles = 6) {
    util::Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      plaintexts.push_back(rng.next_u64());
      std::vector<double> samples;
      for (int c = 0; c < cycles; ++c) {
        samples.push_back(static_cast<double>(rng.next_u32() & 0xFFFF));
      }
      traces.emplace_back(std::move(samples));
    }
  }
};

TEST(BitsliceProviders, CpaAttackMatchesScalarExactly) {
  const Stream stream(0xB17F);
  analysis::CpaConfig cfg;
  cfg.sbox = 2;
  analysis::CpaAttack scalar(cfg), sliced(cfg);
  sliced.set_provider(std::make_shared<CpaProvider>(cfg.sbox));
  for (std::size_t i = 0; i < stream.traces.size(); ++i) {
    scalar.add_trace(stream.plaintexts[i], stream.traces[i]);
    sliced.add_trace(stream.plaintexts[i], stream.traces[i]);
  }
  const analysis::CpaResult a = scalar.solve();
  const analysis::CpaResult b = sliced.solve();
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.best_corr, b.best_corr);  // bit-identical doubles
  for (int g = 0; g < 64; ++g) EXPECT_EQ(a.corr_per_guess[g], b.corr_per_guess[g]);
}

TEST(BitsliceProviders, DpaAttackMatchesScalarExactly) {
  const Stream stream(0xB180);
  analysis::DpaConfig cfg;
  cfg.sbox = 5;
  cfg.bit = 1;
  analysis::DpaAttack scalar(cfg), sliced(cfg);
  sliced.set_provider(std::make_shared<DpaProvider>(cfg.sbox, cfg.bit));
  for (std::size_t i = 0; i < stream.traces.size(); ++i) {
    scalar.add_trace(stream.plaintexts[i], stream.traces[i]);
    sliced.add_trace(stream.plaintexts[i], stream.traces[i]);
  }
  const analysis::DpaResult a = scalar.solve();
  const analysis::DpaResult b = sliced.solve();
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.best_peak, b.best_peak);
  for (int g = 0; g < 64; ++g) EXPECT_EQ(a.peak_per_guess[g], b.peak_per_guess[g]);
}

TEST(BitsliceProviders, MlpaAttackMatchesScalarExactly) {
  const Stream stream(0xB181);
  analysis::MlpaConfig cfg;
  cfg.sbox = 0;
  analysis::MlpaAttack scalar(cfg), sliced(cfg);
  std::vector<int> in_masks;
  for (const analysis::LinearApprox& approx : sliced.approximations()) {
    in_masks.push_back(approx.in_mask);
  }
  sliced.set_provider(std::make_shared<MlpaProvider>(cfg.sbox, in_masks));
  for (std::size_t i = 0; i < stream.traces.size(); ++i) {
    scalar.add_trace(stream.plaintexts[i], stream.traces[i]);
    sliced.add_trace(stream.plaintexts[i], stream.traces[i]);
  }
  const analysis::MlpaResult a = scalar.solve();
  const analysis::MlpaResult b = sliced.solve();
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.best_score, b.best_score);
  for (int g = 0; g < 64; ++g) EXPECT_EQ(a.score_per_guess[g], b.score_per_guess[g]);
}

TEST(BitsliceProviders, CollisionAttackMatchesScalarExactly) {
  const Stream stream(0xB182, /*count=*/128);
  analysis::CollisionConfig cfg;
  cfg.sbox = 0;
  analysis::CollisionAttack scalar(cfg), sliced(cfg);
  sliced.set_provider(std::make_shared<CollisionProvider>(cfg.sbox));
  for (std::size_t i = 0; i < stream.traces.size(); ++i) {
    scalar.add_trace(stream.plaintexts[i], stream.traces[i]);
    sliced.add_trace(stream.plaintexts[i], stream.traces[i]);
  }
  const analysis::CollisionResult a = scalar.solve();
  const analysis::CollisionResult b = sliced.solve();
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.classes_seen, b.classes_seen);
  for (int g = 0; g < 64; ++g) EXPECT_EQ(a.score_per_guess[g], b.score_per_guess[g]);
}

TEST(BitsliceProviders, CountMismatchIsRejected) {
  analysis::CpaAttack cpa(analysis::CpaConfig{});
  EXPECT_THROW(cpa.set_provider(std::make_shared<CollisionProvider>(0)),
               std::invalid_argument);
  analysis::CollisionAttack collision(analysis::CollisionConfig{});
  EXPECT_THROW(collision.set_provider(std::make_shared<CpaProvider>(0)),
               std::invalid_argument);
}

// ---- whole-campaign byte-identity across backends and thread counts ----

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(BitsliceCampaign, BackendsAreByteIdenticalAtAnyThreadCount) {
  const BackendGuard guard;
  const campaign::CampaignSpec spec = campaign::CampaignSpec::parse(
      "[campaign]\n"
      "name = backend_identity\n"
      "[axes]\n"
      "policy = original\n"
      "analysis = dpa, cpa, mlpa, collision\n"
      "traces = 4\n");
  const fs::path base = fs::path(::testing::TempDir()) / "emask_backend_ident";
  fs::remove_all(base);

  struct Run {
    const char* dir;
    campaign::Backend backend;
    std::size_t jobs;
  };
  const Run runs[] = {
      {"scalar-j1", campaign::Backend::kScalar, 1},
      {"bitslice-j2", campaign::Backend::kBitslice, 2},
      {"bitslice-j8", campaign::Backend::kBitslice, 8},
  };
  for (const Run& run : runs) {
    campaign::RunnerOptions options;
    options.out_dir = (base / run.dir).string();
    options.jobs = run.jobs;
    options.quiet = true;
    options.backend = run.backend;
    EXPECT_TRUE(campaign::CampaignRunner(spec, options).run().complete)
        << run.dir;
  }

  const fs::path reference = base / runs[0].dir;
  for (int i = 1; i < 3; ++i) {
    const fs::path other = base / runs[i].dir;
    EXPECT_EQ(read_file(reference / "manifest.json"),
              read_file(other / "manifest.json"))
        << runs[i].dir;
    EXPECT_EQ(read_file(reference / "summary.csv"),
              read_file(other / "summary.csv"))
        << runs[i].dir;
    for (const auto& entry : fs::directory_iterator(reference / "scenarios")) {
      for (const auto& file : fs::directory_iterator(entry.path())) {
        const fs::path twin = other / "scenarios" / entry.path().filename() /
                              file.path().filename();
        EXPECT_EQ(read_file(file.path()), read_file(twin))
            << "mismatch at " << twin;
      }
    }
  }
  fs::remove_all(base);
}

TEST(BitsliceCampaign, BackendNamesParse) {
  EXPECT_EQ(campaign::backend_from_name("scalar"), campaign::Backend::kScalar);
  EXPECT_EQ(campaign::backend_from_name("bitslice"),
            campaign::Backend::kBitslice);
  EXPECT_EQ(campaign::backend_from_name("auto"), campaign::Backend::kAuto);
  EXPECT_THROW((void)campaign::backend_from_name("psychic"),
               campaign::SpecError);
}

}  // namespace
}  // namespace emask::bitslice
