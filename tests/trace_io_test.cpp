// EMTS trace-set persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/trace_io.hpp"
#include "util/rng.hpp"

namespace emask::analysis {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIo, RoundTrip) {
  const std::string path = temp_path("roundtrip.emts");
  TraceSet original;
  util::Rng rng(1);
  for (int i = 0; i < 7; ++i) {
    std::vector<double> v(33);
    for (auto& s : v) s = 100.0 + rng.next_gaussian();
    original.add(rng.next_u64(), Trace(std::move(v)));
  }
  save_trace_set(path, original);
  const TraceSet loaded = load_trace_set(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.inputs, original.inputs);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded.traces[i].size(), original.traces[i].size());
    for (std::size_t j = 0; j < loaded.traces[i].size(); ++j) {
      // float32 quantization only.
      EXPECT_NEAR(loaded.traces[i][j], original.traces[i][j],
                  1e-4 * std::abs(original.traces[i][j]));
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, EmptySetRoundTrips) {
  const std::string path = temp_path("empty.emts");
  save_trace_set(path, TraceSet{});
  EXPECT_EQ(load_trace_set(path).size(), 0u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMixedLengths) {
  TraceSet bad;
  bad.add(1, Trace({1.0, 2.0}));
  bad.add(2, Trace({1.0}));
  EXPECT_THROW(save_trace_set(temp_path("bad.emts"), bad),
               std::runtime_error);
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path = temp_path("magic.emts");
  std::ofstream(path) << "NOPE-this-is-not-a-trace-set";
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncation) {
  const std::string path = temp_path("trunc.emts");
  TraceSet set;
  set.add(42, Trace(std::vector<double>(64, 1.0)));
  save_trace_set(path, set);
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_set("/nonexistent/x.emts"), std::runtime_error);
}

TEST(TraceIo, RejectsUnsupportedVersion) {
  const std::string path = temp_path("version.emts");
  TraceSet set;
  set.add(1, Trace({1.0, 2.0}));
  save_trace_set(path, set);
  // Bump the version field (bytes 4..7) to a future value.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const std::uint32_t future = 99;
  f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  f.close();
  try {
    (void)load_trace_set(path);
    FAIL() << "expected version rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedHeader) {
  const std::string path = temp_path("short_header.emts");
  std::ofstream(path, std::ios::binary) << "EMTS";  // magic only
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsCorruptTraceCountWithoutAllocating) {
  const std::string path = temp_path("huge_count.emts");
  TraceSet set;
  set.add(7, Trace({1.0, 2.0, 3.0}));
  save_trace_set(path, set);
  // Corrupt n_traces (bytes 8..15) to an absurd value: the loader must
  // reject it against the file size instead of trusting it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(8);
  const std::uint64_t absurd = ~0ull / 2;
  f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  f.close();
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTrailingBytes) {
  const std::string path = temp_path("trailing.emts");
  TraceSet set;
  set.add(7, Trace({1.0, 2.0, 3.0}));
  save_trace_set(path, set);
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Incremental writer (the streaming path BatchRunner uses) ----

TEST(TraceSetWriter, StreamedFileMatchesSaveTraceSet) {
  const std::string bulk_path = temp_path("bulk.emts");
  const std::string stream_path = temp_path("stream.emts");
  TraceSet set;
  util::Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    std::vector<double> v(17);
    for (auto& s : v) s = rng.next_gaussian();
    set.add(rng.next_u64(), Trace(std::move(v)));
  }
  save_trace_set(bulk_path, set);
  {
    TraceSetWriter writer(stream_path, set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      writer.append(set.inputs[i], set.traces[i]);
    }
    writer.close();
    EXPECT_EQ(writer.written(), set.size());
  }
  // Byte-identical files: streaming is a pure refactoring of the format.
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(bulk_path), slurp(stream_path));
  std::remove(bulk_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(TraceSetWriter, RejectsMixedLengths) {
  const std::string path = temp_path("writer_mixed.emts");
  TraceSetWriter writer(path, 2);
  writer.append(1, Trace({1.0, 2.0}));
  EXPECT_THROW(writer.append(2, Trace({1.0})), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceSetWriter, CloseValidatesPromisedCount) {
  const std::string path = temp_path("writer_short.emts");
  TraceSetWriter writer(path, 3);
  writer.append(1, Trace({1.0}));
  EXPECT_THROW(writer.close(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceSetWriter, RejectsMoreTracesThanPromised) {
  const std::string path = temp_path("writer_over.emts");
  TraceSetWriter writer(path, 1);
  writer.append(1, Trace({1.0}));
  EXPECT_THROW(writer.append(2, Trace({1.0})), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceSetWriter, EmptySetWritesLoadableFile) {
  const std::string path = temp_path("writer_empty.emts");
  {
    TraceSetWriter writer(path, 0);
    writer.close();
  }
  EXPECT_EQ(load_trace_set(path).size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace emask::analysis
