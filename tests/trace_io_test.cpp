// EMTS trace-set persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/trace_io.hpp"
#include "util/rng.hpp"

namespace emask::analysis {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIo, RoundTrip) {
  const std::string path = temp_path("roundtrip.emts");
  TraceSet original;
  util::Rng rng(1);
  for (int i = 0; i < 7; ++i) {
    std::vector<double> v(33);
    for (auto& s : v) s = 100.0 + rng.next_gaussian();
    original.add(rng.next_u64(), Trace(std::move(v)));
  }
  save_trace_set(path, original);
  const TraceSet loaded = load_trace_set(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.inputs, original.inputs);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded.traces[i].size(), original.traces[i].size());
    for (std::size_t j = 0; j < loaded.traces[i].size(); ++j) {
      // float32 quantization only.
      EXPECT_NEAR(loaded.traces[i][j], original.traces[i][j],
                  1e-4 * std::abs(original.traces[i][j]));
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, EmptySetRoundTrips) {
  const std::string path = temp_path("empty.emts");
  save_trace_set(path, TraceSet{});
  EXPECT_EQ(load_trace_set(path).size(), 0u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMixedLengths) {
  TraceSet bad;
  bad.add(1, Trace({1.0, 2.0}));
  bad.add(2, Trace({1.0}));
  EXPECT_THROW(save_trace_set(temp_path("bad.emts"), bad),
               std::runtime_error);
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path = temp_path("magic.emts");
  std::ofstream(path) << "NOPE-this-is-not-a-trace-set";
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncation) {
  const std::string path = temp_path("trunc.emts");
  TraceSet set;
  set.add(42, Trace(std::vector<double>(64, 1.0)));
  save_trace_set(path, set);
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(load_trace_set(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_set("/nonexistent/x.emts"), std::runtime_error);
}

}  // namespace
}  // namespace emask::analysis
