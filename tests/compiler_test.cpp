// Forward slicing and masking policies.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "compiler/masking.hpp"
#include "compiler/slicer.hpp"
#include "compiler/taint.hpp"
#include "des/asm_generator.hpp"
#include "sha/asm_generator.hpp"

namespace emask::compiler {
namespace {

assembler::Program prog(const std::string& src) {
  return assembler::assemble(src);
}

/// Indices of sliced instructions.
std::vector<std::uint32_t> sliced(const SliceResult& r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < r.in_slice.size(); ++i) {
    if (r.in_slice[i]) out.push_back(i);
  }
  return out;
}

TEST(AbsVal, JoinSemantics) {
  AbsVal a, b;
  a.is_const = b.is_const = true;
  a.cval = b.cval = 7;
  a.points_to = 1;
  b.points_to = 2;
  const AbsVal j = a.join(b);
  EXPECT_TRUE(j.is_const);
  EXPECT_EQ(j.cval, 7u);
  EXPECT_EQ(j.points_to, 3u);

  b.cval = 8;
  EXPECT_FALSE(a.join(b).is_const);

  b.tainted = true;
  EXPECT_TRUE(a.join(b).tainted);
}

TEST(ForwardSlice, NoSecretsNoSlice) {
  const auto r = forward_slice(prog(R"(
.data
x: .word 1
.text
main:
  la $t0, x
  lw $t1, 0($t0)
  sw $t1, 0($t0)
  halt
)"));
  EXPECT_EQ(r.slice_size(), 0u);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(ForwardSlice, DirectSecretLoadIsSliced) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
pub: .word 2
.text
main:
  la $t0, key
  lw $t1, 0($t0)      # sliced (reads key)
  la $t2, pub
  lw $t3, 0($t2)      # not sliced
  halt
.data
.secret key
)"));
  const auto s = sliced(r);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 2u);  // la is 2 instructions; lw is index 2
}

TEST(ForwardSlice, TaintFlowsThroughSecurableOps) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
out: .space 4
.text
main:
  la $t0, key
  lw $t1, 0($t0)      # slice: load key
  xor $t2, $t1, $t1   # slice: xor on tainted
  sll $t3, $t2, 4     # slice: shift on tainted
  addu $t4, $t3, $t3  # slice: add on tainted
  la $t5, out
  sw $t4, 0($t5)      # slice: store tainted
  halt
)"));
  EXPECT_EQ(r.slice_size(), 5u);
  EXPECT_TRUE(r.symbol_tainted[1]);  // the store taints `out`
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(ForwardSlice, RegionTaintPropagatesAcrossMemory) {
  // Secret flows into buf; a later (textually earlier in dataflow order)
  // load from buf is tainted thanks to the flow-insensitive region taint.
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
buf: .space 4
dst: .space 4
.text
main:
  la $t0, key
  la $t1, buf
  la $t2, dst
  lw $t3, 0($t0)
  sw $t3, 0($t1)      # buf is now tainted
  lw $t4, 0($t1)      # tainted load
  sw $t4, 0($t2)      # taints dst
  halt
)"));
  ASSERT_EQ(r.symbol_tainted.size(), 3u);
  EXPECT_TRUE(r.symbol_tainted[0]);
  EXPECT_TRUE(r.symbol_tainted[1]);
  EXPECT_TRUE(r.symbol_tainted[2]);
  EXPECT_EQ(r.slice_size(), 4u);
}

TEST(ForwardSlice, TaintedIndexLoadIsSecureIndexing) {
  // A load from a *public* table at a secret-derived offset must be sliced
  // (the paper's "secure indexing"), and its result is tainted.
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
tab: .word 1, 2, 3, 4
dst: .space 4
.text
main:
  la $t0, key
  lw $t1, 0($t0)      # slice
  sll $t2, $t1, 2     # slice
  la $t3, tab
  addu $t3, $t3, $t2  # slice (address computation on tainted)
  lw $t4, 0($t3)      # slice: secure indexing
  la $t5, dst
  sw $t4, 0($t5)      # slice: result is tainted
  halt
)"));
  EXPECT_EQ(r.slice_size(), 5u);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(ForwardSlice, DeclassifiedSinkStaysInsecure) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
out: .space 4
.declassified out
.text
main:
  la $t0, key
  lw $t1, 0($t0)      # slice
  la $t2, out
  sw $t1, 0($t2)      # NOT sliced: declassified sink
  lw $t3, 0($t2)      # NOT sliced: declassified regions are public
  halt
)"));
  EXPECT_EQ(r.slice_size(), 1u);
  // out never becomes tainted.
  EXPECT_FALSE(r.symbol_tainted[1]);
}

TEST(ForwardSlice, TaintedBranchDiagnosed) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
.text
main:
  la $t0, key
  lw $t1, 0($t0)
  bne $t1, $zero, main
  halt
)"));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].kind, DiagnosticKind::kTaintedBranch);
}

TEST(ForwardSlice, TaintedNonSecurableDiagnosed) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
.text
main:
  la $t0, key
  lw $t1, 0($t0)
  subu $t2, $t1, $t0   # subu has no secure version
  halt
)"));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].kind, DiagnosticKind::kTaintedNonSecurable);
}

TEST(ForwardSlice, UnresolvedAddressDiagnosed) {
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
.text
main:
  li $t0, 0x20000      # outside every symbol; dataflow can't resolve it...
  addu $t0, $t0, $t0   # ...and after doubling it is no longer constant-known
  lw $t1, 0($t0)
  halt
)"));
  bool saw = false;
  for (const auto& d : r.diagnostics) {
    saw |= d.kind == DiagnosticKind::kUnresolvedAddress;
  }
  EXPECT_TRUE(saw);
}

TEST(ForwardSlice, SpilledPointerResolvesThroughMemory) {
  // -O0 style: the base pointer is spilled and reloaded; the region
  // points-to summary must keep the access resolved and untainted.
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
tab: .word 5
slot: .space 4
dst: .space 4
.text
main:
  la $t0, tab
  la $t1, slot
  sw $t0, 0($t1)       # spill &tab
  lw $t2, 0($t1)       # reload
  lw $t3, 0($t2)       # load tab[0] — public, must NOT be sliced
  la $t4, dst
  sw $t3, 0($t4)
  halt
)"));
  EXPECT_EQ(r.slice_size(), 0u);
  bool unresolved = false;
  for (const auto& d : r.diagnostics) {
    unresolved |= d.kind == DiagnosticKind::kUnresolvedAddress;
  }
  EXPECT_FALSE(unresolved);
}

TEST(ForwardSlice, JoinOverBranchesMerges) {
  // Whichever path executes, $t2 may be tainted afterwards.
  const auto r = forward_slice(prog(R"(
.data
key: .word 1
.secret key
pub: .word 2
out: .space 4
.text
main:
  la $t0, key
  la $t1, pub
  beq $zero, $zero, b1
  lw $t2, 0($t1)
  b join
b1:
  lw $t2, 0($t0)       # sliced
join:
  la $t3, out
  sw $t2, 0($t3)       # sliced: $t2 may hold key data
  halt
)"));
  const auto s = sliced(r);
  ASSERT_EQ(s.size(), 2u);
}

TEST(ForwardSlice, CallClobbersCallerSavedRegisters) {
  // After jal, $t1 may have been overwritten by the callee with secret-
  // derived data: the conservative analysis must slice the store.
  const assembler::Program p = prog(R"(
.data
key: .word 1
.secret key
out: .space 4
.text
main:
  li $t1, 5
  jal sub
  la $t2, out
  sw $t1, 0($t2)
  halt
sub:
  jr $ra
)");
  const auto r = forward_slice(p);
  bool store_sliced = false;
  for (const std::uint32_t i : sliced(r)) {
    store_sliced |= isa::info(p.text[i].op).is_store;
  }
  EXPECT_TRUE(store_sliced);
}

TEST(ForwardSlice, TooManySymbolsRejected) {
  std::string src = ".data\n";
  for (int i = 0; i < 65; ++i) {
    src += "s" + std::to_string(i) + ": .word 1\n";
  }
  src += ".text\nmain:\n halt\n";
  EXPECT_THROW(forward_slice(prog(src)), std::invalid_argument);
}

TEST(ForwardSlice, PaperStrictClassesRejectLogicUnit) {
  // Under the paper's exact four secure classes, a tainted AND is a
  // protection hole; with the extended set it is simply secured.
  const assembler::Program p = prog(R"(
.data
key: .word 1
.secret key
.text
main:
  la $t0, key
  lw $t1, 0($t0)
  and $t2, $t1, $t1
  halt
)");
  const auto relaxed = forward_slice(p);
  EXPECT_TRUE(relaxed.diagnostics.empty());
  EXPECT_EQ(relaxed.slice_size(), 2u);

  SliceOptions strict;
  strict.paper_strict_classes = true;
  const auto strict_result = forward_slice(p, strict);
  ASSERT_FALSE(strict_result.diagnostics.empty());
  EXPECT_EQ(strict_result.diagnostics[0].kind,
            DiagnosticKind::kTaintedNonSecurable);
}

TEST(ForwardSlice, DesIsCompleteUnderPaperStrictClasses) {
  // The paper's four classes cover everything DES needs — strict mode
  // produces the identical slice with zero diagnostics.
  const assembler::Program p =
      assembler::assemble(des::generate_des_asm(0, 0, {}));
  SliceOptions strict;
  strict.paper_strict_classes = true;
  const auto a = forward_slice(p);
  const auto b = forward_slice(p, strict);
  EXPECT_TRUE(b.diagnostics.empty());
  EXPECT_EQ(a.in_slice, b.in_slice);
}

TEST(ForwardSlice, Sha1NeedsTheLogicUnitExtension) {
  std::array<std::uint32_t, 16> block{};
  const assembler::Program p =
      assembler::assemble(sha::generate_sha1_asm(block));
  SliceOptions strict;
  strict.paper_strict_classes = true;
  const auto result = forward_slice(p, strict);
  std::size_t non_securable = 0;
  for (const auto& d : result.diagnostics) {
    non_securable += d.kind == DiagnosticKind::kTaintedNonSecurable;
  }
  EXPECT_GT(non_securable, 0u) << "Ch/Maj must trip the strict class set";
}

// ---- Policies ----

constexpr const char* kPolicyProgram = R"(
.data
key: .word 1
.secret key
pub: .word 2
out: .space 8
.text
main:
  la $t0, key
  lw $t1, 0($t0)      # secret load
  la $t2, pub
  lw $t3, 0($t2)      # public load
  la $t4, out
  sw $t1, 0($t4)      # secret store
  sw $t3, 4($t4)      # public store
  xor $t5, $t1, $t3   # tainted xor
  addu $t6, $t3, $t3  # public add
  halt
)";

TEST(Masking, OriginalSecuresNothing) {
  const auto r = apply_masking(prog(kPolicyProgram), Policy::kOriginal);
  EXPECT_EQ(r.secured_count, 0u);
  for (const auto& inst : r.program.text) EXPECT_FALSE(inst.secure);
}

TEST(Masking, SelectiveSecuresExactlyTheSlice) {
  const auto r = apply_masking(prog(kPolicyProgram), Policy::kSelective);
  // secret load, secret store, xor = 3.
  EXPECT_EQ(r.secured_count, 3u);
  for (std::size_t i = 0; i < r.program.text.size(); ++i) {
    EXPECT_EQ(r.program.text[i].secure, static_cast<bool>(r.slice.in_slice[i]));
  }
}

TEST(Masking, NaiveSecuresAllLoadsStores) {
  const auto r = apply_masking(prog(kPolicyProgram), Policy::kNaiveLoadStore);
  EXPECT_EQ(r.secured_count, 4u);  // 2 loads + 2 stores
  for (const auto& inst : r.program.text) {
    const auto& oi = isa::info(inst.op);
    EXPECT_EQ(inst.secure, oi.is_load || oi.is_store);
  }
}

TEST(Masking, AllSecureSecuresEverything) {
  const auto r = apply_masking(prog(kPolicyProgram), Policy::kAllSecure);
  EXPECT_EQ(r.secured_count, r.program.text.size());
  for (const auto& inst : r.program.text) EXPECT_TRUE(inst.secure);
}

TEST(Masking, PolicyNames) {
  EXPECT_EQ(policy_name(Policy::kOriginal), "original");
  EXPECT_EQ(policy_name(Policy::kSelective), "selective");
  EXPECT_EQ(policy_name(Policy::kNaiveLoadStore), "naive_loadstore");
  EXPECT_EQ(policy_name(Policy::kAllSecure), "all_secure");
}

TEST(Masking, InputSecureBitsAreIgnored) {
  // Hand-written "slw" in the source does not survive kOriginal: policies
  // own the secure bits entirely.
  const auto r = apply_masking(prog(R"(
.data
x: .word 1
.text
main:
  la $t0, x
  slw $t1, 0($t0)
  halt
)"),
                               Policy::kOriginal);
  for (const auto& inst : r.program.text) EXPECT_FALSE(inst.secure);
}

}  // namespace
}  // namespace emask::compiler
