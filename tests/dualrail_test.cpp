// Gate-level dual-rail circuit model (paper Fig. 5): the whole point is
// that the *number* of nodes discharging per cycle — and hence the supply
// energy — is independent of the operand data in secure mode.
#include <gtest/gtest.h>

#include "dualrail/adder_unit.hpp"
#include "dualrail/dynamic_gate.hpp"
#include "dualrail/precharged_bus.hpp"
#include "dualrail/xor_unit.hpp"
#include "util/rng.hpp"

namespace emask::dualrail {
namespace {

constexpr double kVdd = 2.5;
constexpr double kNodeCap = 3e-15;  // paper-calibrated XOR node

TEST(DynamicNode, PrechargeOnlyPaysAfterDischarge) {
  DynamicNode n(1e-12, kVdd);
  EXPECT_EQ(n.precharge(), 0.0);  // powered up charged
  n.evaluate(false);
  EXPECT_EQ(n.precharge(), 0.0);  // did not discharge
  n.evaluate(true);
  EXPECT_FALSE(n.charged());
  const double e = n.precharge();
  EXPECT_DOUBLE_EQ(e, 1e-12 * kVdd * kVdd);  // C*V^2 = 6.25 pJ for 1 pF
  EXPECT_TRUE(n.charged());
}

TEST(DynamicNode, PaperWireExampleSixPointTwoFivePicojoules) {
  // Sec. 4.2: "for an internal wire of 1pF and a supply voltage of 2.5V,
  // the first case consumes 6.25pJ more energy than the second case."
  DynamicNode n(1e-12, 2.5);
  n.evaluate(true);
  EXPECT_NEAR(n.precharge() * 1e12, 6.25, 1e-9);
}

TEST(DualRailXor, ComputesXor) {
  DualRailXor32 x(kNodeCap, kVdd);
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    x.cycle(a, b, (i & 1) != 0);
    EXPECT_EQ(x.result(), a ^ b);
  }
}

TEST(DualRailXor, SecureModeDischargesExactly32Nodes) {
  DualRailXor32 x(kNodeCap, kVdd);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    x.cycle(rng.next_u32(), rng.next_u32(), /*secure=*/true);
    EXPECT_EQ(x.discharged_nodes(), 32);
  }
}

TEST(DualRailXor, SecureSteadyStateEnergyIsConstant) {
  DualRailXor32 x(kNodeCap, kVdd);
  util::Rng rng(4);
  x.cycle(rng.next_u32(), rng.next_u32(), true);  // warm up
  const double first = x.cycle(rng.next_u32(), rng.next_u32(), true).total();
  for (int i = 0; i < 100; ++i) {
    const double e = x.cycle(rng.next_u32(), rng.next_u32(), true).total();
    EXPECT_DOUBLE_EQ(e, first);
  }
  // Paper: 0.6 pJ in secure mode.
  EXPECT_NEAR(first * 1e12, 0.6, 0.01);
}

TEST(DualRailXor, NormalModeEnergyIsDataDependent) {
  DualRailXor32 x(kNodeCap, kVdd);
  // Steady-state normal mode: energy follows popcount of the previous
  // result (that is what gets recharged).
  x.cycle(0xFFFFFFFFu, 0, false);  // result all-ones: 32 discharges
  const double heavy = x.cycle(0, 0, false).precharge;  // recharge 32
  const double light = x.cycle(0, 0, false).precharge;  // recharge 0
  EXPECT_GT(heavy, light);
  EXPECT_DOUBLE_EQ(light, 0.0);
  EXPECT_NEAR(heavy * 1e12, 0.6, 0.01);  // 32 nodes = the secure constant
}

TEST(DualRailXor, NormalModeAveragesHalfTheSecureEnergy) {
  // Paper: "as opposed to energy consumption of 0.6pJ in the secure mode,
  // the XOR unit consumes only 0.3pJ in the normal mode" (random data).
  DualRailXor32 x(kNodeCap, kVdd);
  util::Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += x.cycle(rng.next_u32(), rng.next_u32(), false).total();
  }
  EXPECT_NEAR(sum / n * 1e12, 0.3, 0.01);
}

TEST(DualRailXor, GatedComplementRailCostsNothingWhenUnused) {
  // Running only normal cycles, the complement rail never discharges, so a
  // later secure cycle's precharge pays only for the true rail's history.
  DualRailXor32 x(kNodeCap, kVdd);
  x.cycle(0, 0, false);  // result 0: nothing discharges anywhere
  const CycleEnergy e = x.cycle(0xFFFF0000u, 0, true);
  EXPECT_DOUBLE_EQ(e.precharge, 0.0);  // nothing to recharge yet
  EXPECT_EQ(x.discharged_nodes(), 32);
}

TEST(DualRailAdder, ComputesSum) {
  DualRailAdder32 adder(kNodeCap, kVdd);
  util::Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    adder.cycle(a, b, (i & 1) != 0);
    EXPECT_EQ(adder.result(), a + b);
  }
}

TEST(DualRailAdder, SecureModeDischargesExactly64Nodes) {
  // 32 sum pairs + 32 carry pairs, one node of each pair per evaluation.
  DualRailAdder32 adder(kNodeCap, kVdd);
  util::Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    adder.cycle(rng.next_u32(), rng.next_u32(), /*secure=*/true);
    EXPECT_EQ(adder.discharged_nodes(), 64);
  }
}

TEST(DualRailAdder, SecureSteadyStateEnergyConstant) {
  DualRailAdder32 adder(kNodeCap, kVdd);
  util::Rng rng(23);
  adder.cycle(rng.next_u32(), rng.next_u32(), true);  // warm up
  const double first = adder.cycle(rng.next_u32(), rng.next_u32(), true).total();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(adder.cycle(rng.next_u32(), rng.next_u32(), true).total(),
                     first);
  }
}

TEST(DualRailAdder, NormalModeIsDataDependent) {
  DualRailAdder32 adder(kNodeCap, kVdd);
  // 0xFFFFFFFF + 1: every bit carries, sum = 0 -> 32 discharges (carries).
  adder.cycle(0xFFFFFFFFu, 1, false);
  const int heavy = adder.discharged_nodes();
  adder.cycle(0, 0, false);
  const int light = adder.discharged_nodes();
  EXPECT_GT(heavy, light);
  EXPECT_EQ(light, 0);
}

TEST(StaticBus, RisingEdgesOnly) {
  StaticBus bus(32, 1e-12, kVdd);
  EXPECT_EQ(bus.transfer(0), 0.0);
  const double e1 = bus.transfer(0xF);         // 4 rising
  EXPECT_NEAR(e1 * 1e12, 4 * 6.25, 1e-9);
  EXPECT_EQ(bus.transfer(0xF), 0.0);           // no change
  EXPECT_EQ(bus.transfer(0x3), 0.0);           // falling edges are free
  const double e2 = bus.transfer(0xC);         // 2 rising
  EXPECT_NEAR(e2 * 1e12, 2 * 6.25, 1e-9);
}

TEST(StaticBus, WidthMasksHighBits) {
  StaticBus bus(8, 1e-12, kVdd);
  const double e = bus.transfer(0xFFFFFFFFu);
  EXPECT_NEAR(e * 1e12, 8 * 6.25, 1e-9);
}

TEST(PrechargedBus, ConstantEnergyIndependentOfData) {
  PrechargedDualRailBus bus(32, 1e-12, kVdd);
  (void)bus.transfer(0xDEADBEEF);  // first evaluation: nothing to recharge
  util::Rng rng(6);
  const double steady = bus.transfer(rng.next_u32());
  EXPECT_NEAR(steady * 1e12, 32 * 6.25, 1e-9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(bus.transfer(rng.next_u32()), steady);
    EXPECT_EQ(bus.last_recharged(), 32);
  }
}

TEST(PrechargedBus, FirstCycleRechargesNothing) {
  PrechargedDualRailBus bus(32, 1e-12, kVdd);
  EXPECT_EQ(bus.transfer(0x12345678), 0.0);
  EXPECT_EQ(bus.last_recharged(), 0);
}

}  // namespace
}  // namespace emask::dualrail
