// Second-order DPA: the preprocessing defeats (synthetic) Boolean share
// masking, yet gets nothing from the paper's dual-rail masking — the
// structural difference between randomized-share software countermeasures
// and constant-power hardware.
#include <gtest/gtest.h>

#include "analysis/dpa.hpp"
#include "analysis/second_order.hpp"
#include "core/masking_pipeline.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace emask::analysis {
namespace {

TEST(SecondOrder, ValidatesUsage) {
  EXPECT_THROW(SecondOrderPreprocessor(0, 10, 0), std::invalid_argument);
  SecondOrderPreprocessor pre(0, 10, 2);
  EXPECT_THROW(pre.combine(Trace(std::vector<double>(10, 1.0))),
               std::logic_error);  // fit() first
}

TEST(SecondOrder, CombinedLengthAndCentering) {
  SecondOrderPreprocessor pre(0, 5, 2);
  const Trace flat(std::vector<double>{1, 2, 3, 4, 5});
  pre.fit(flat);
  const Trace c = pre.combine(flat);
  // lags 1 and 2: (5-1) + (5-2) = 7 samples, all exactly centered -> 0.
  ASSERT_EQ(c.size(), 7u);
  EXPECT_EQ(c.max_abs(), 0.0);
}

// Synthetic Boolean masking: a secret bit s is split into shares m and
// s^m with a fresh random mask per trace.  Sample 3 leaks the mask,
// sample 9 leaks the masked value.  First-order DPA sees nothing at
// either sample; the centered product of the two recovers s.
TEST(SecondOrder, BreaksSyntheticBooleanMasking) {
  util::Rng rng(0x20);
  SecondOrderPreprocessor pre(0, 16, 15);
  std::vector<std::pair<int, Trace>> recorded;  // (secret bit, raw trace)
  for (int i = 0; i < 3000; ++i) {
    const int secret = static_cast<int>(rng.next_below(2));
    const int mask = static_cast<int>(rng.next_below(2));
    std::vector<double> v(16);
    for (auto& x : v) x = 100.0 + 0.3 * rng.next_gaussian();
    v[3] += 2.0 * mask;
    v[9] += 2.0 * (secret ^ mask);
    Trace t(std::move(v));
    pre.fit(t);
    recorded.emplace_back(secret, std::move(t));
  }

  // First order: group means at every sample are independent of the secret.
  util::RunningStats first_g0, first_g1;
  // Second order: the combined sample for the pair (3, 9) separates groups.
  util::RunningStats second_g0, second_g1;
  // Pair (3, 9) lives at lag 6; its index within the combined layout is
  // offset_of_lag6 + 3, where lags 1..5 contribute (16 - lag) samples each.
  std::size_t pair_index = 0;
  for (std::size_t lag = 1; lag < 6; ++lag) pair_index += 16 - lag;
  pair_index += 3;
  for (const auto& [secret, t] : recorded) {
    (secret ? first_g1 : first_g0).add(t[9]);
    const Trace c = pre.combine(t);
    (secret ? second_g1 : second_g0).add(c[pair_index]);
  }
  EXPECT_LT(std::abs(util::welch_t(first_g0, first_g1)), 4.0)
      << "first-order leak should be hidden by the mask";
  EXPECT_GT(std::abs(util::welch_t(second_g0, second_g1)), 10.0)
      << "second-order combination must expose the secret";
}

// Against dual-rail masking there is nothing to combine: the secured
// round's per-cycle variance is zero, so every centered product is zero.
TEST(SecondOrder, DualRailMaskingResistsSecondOrder) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto masked = core::MaskingPipeline::des(compiler::Policy::kSelective);
  SecondOrderPreprocessor pre(4000, 9000, 4);
  util::Rng rng(0x21);
  std::vector<Trace> traces;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(masked.run_des(key, rng.next_u64(), 9000).trace);
    pre.fit(traces.back());
  }
  for (const Trace& t : traces) {
    EXPECT_LT(pre.combine(t).max_abs(), 1e-12);
  }
}

}  // namespace
}  // namespace emask::analysis
