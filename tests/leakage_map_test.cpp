// Leakage localization: TVLA-flagged cycles attributed to source lines.
#include <gtest/gtest.h>

#include "core/leakage_map.hpp"

namespace emask::core {
namespace {

constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
constexpr std::uint64_t kPlain = 0x0123456789ABCDEFull;

TEST(LeakageMap, UnmaskedDeviceLeaksAtSecretLoads) {
  const auto device = MaskingPipeline::des(compiler::Policy::kOriginal);
  const LeakageMap map = localize_des_leakage(device, kKey, kPlain, 10);
  ASSERT_TRUE(map.leaks());
  EXPECT_GT(map.max_abs_t, 8.0);
  EXPECT_GT(map.sites.size(), 5u);
  // The hottest site must be a memory access or ALU op on secret data; in
  // particular the S-box indexing load shows up near the top.
  bool sbox_load_found = false;
  for (const LeakSite& site : map.sites) {
    sbox_load_found |= site.instruction.rfind("lw", 0) == 0 &&
                       site.max_abs_t > 8.0;
  }
  EXPECT_TRUE(sbox_load_found);
  // Sites are sorted by severity.
  for (std::size_t i = 1; i < map.sites.size(); ++i) {
    EXPECT_GE(map.sites[i - 1].max_abs_t, map.sites[i].max_abs_t);
  }
}

TEST(LeakageMap, MaskedDeviceLeaksOnlyAtUnprotectedPermutations) {
  // The selective policy leaves the initial (plaintext) permutation and the
  // declassified output insecure by design; any residual TVLA signal must
  // attribute there, never inside the 16 secured rounds.
  const auto device = MaskingPipeline::des(compiler::Policy::kSelective);
  const LeakageMap map = localize_des_leakage(device, kKey, kPlain, 10);
  // Locate the rounds' instruction index range from the program labels.
  const auto& labels = device.program().text_labels;
  const std::uint32_t rounds_begin = labels.at("round_loop");
  const std::uint32_t rounds_end = labels.at("pre_r");
  for (const LeakSite& site : map.sites) {
    EXPECT_FALSE(site.instr_index >= rounds_begin &&
                 site.instr_index < rounds_end)
        << "secured round leaked at line " << site.source_line << ": "
        << site.instruction;
  }
}

TEST(LeakageMap, AllSecureStillShowsPlaintextPermutation) {
  // Even all-secure hardware cannot hide that *different plaintexts* are
  // being encrypted... actually it can: every data-dependent component is
  // dual-railed, so the TVLA map must be completely clean.
  const auto device = MaskingPipeline::des(compiler::Policy::kAllSecure);
  const LeakageMap map = localize_des_leakage(device, kKey, kPlain, 8);
  EXPECT_FALSE(map.leaks());
  EXPECT_TRUE(map.sites.empty());
}

}  // namespace
}  // namespace emask::core
