// Side-channel analysis toolkit: traces, SPA, DPA — on synthetic data and
// on the real simulated DES.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "analysis/dpa.hpp"
#include "analysis/spa.hpp"
#include "analysis/trace.hpp"
#include "core/masking_pipeline.hpp"
#include "des/des.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace emask::analysis {
namespace {

TEST(Trace, TotalsAndMeans) {
  Trace t({1e6, 2e6, 3e6});  // pJ
  EXPECT_DOUBLE_EQ(t.total_uj(), 6.0);
  EXPECT_DOUBLE_EQ(t.mean_pj(), 2e6);
  EXPECT_DOUBLE_EQ(t.max_abs(), 3e6);
}

TEST(Trace, DifferenceUsesCommonPrefix) {
  Trace a({5, 5, 5, 5});
  Trace b({1, 2, 3});
  const Trace d = a.difference(b);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 4);
  EXPECT_DOUBLE_EQ(d[2], 2);
}

TEST(Trace, WindowedAverage) {
  Trace t({1, 3, 5, 7, 9});
  const Trace w = t.windowed_average(2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 2);
  EXPECT_DOUBLE_EQ(w[1], 6);
  EXPECT_DOUBLE_EQ(w[2], 9);  // ragged tail
}

TEST(Trace, SliceClampsBounds) {
  Trace t({1, 2, 3, 4});
  EXPECT_EQ(t.slice(1, 3).size(), 2u);
  EXPECT_EQ(t.slice(3, 100).size(), 1u);
  EXPECT_EQ(t.slice(5, 9).size(), 0u);
  EXPECT_EQ(t.slice(3, 1).size(), 0u);
}

TEST(NoiseModel, AddsGaussianNoiseOfRequestedSigma) {
  NoiseModel noise(10.0, 42);
  Trace flat(std::vector<double>(20000, 100.0));
  const Trace noisy = noise.apply(flat);
  util::RunningStats s;
  for (std::size_t i = 0; i < noisy.size(); ++i) s.add(noisy[i]);
  EXPECT_NEAR(s.mean(), 100.0, 0.5);
  EXPECT_NEAR(s.stddev(), 10.0, 0.5);
}

TEST(Spa, DetectsSyntheticPeriod) {
  // A noisy sawtooth of period 37.
  util::Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 37 * 20; ++i) {
    v.push_back((i % 37) + 0.3 * rng.next_gaussian());
  }
  const SpaResult r = detect_rounds(Trace(std::move(v)), 10, 100);
  EXPECT_EQ(r.best_period, 37u);
  EXPECT_GT(r.periodicity, 0.9);
  EXPECT_EQ(r.repetitions, 20);
}

TEST(Spa, AutocorrelationEdgeCases) {
  Trace t({1, 2, 3});
  EXPECT_EQ(autocorrelation(t, 0), 0.0);
  EXPECT_EQ(autocorrelation(t, 3), 0.0);
}

TEST(Spa, FlatTraceHasNoPeriod) {
  Trace t(std::vector<double>(500, 1.0));
  const SpaResult r = detect_rounds(t, 5, 50);
  EXPECT_EQ(r.periodicity, 0.0);
}

// The paper's Fig. 6 claim: one trace of the unmasked encryption reveals
// the 16 rounds.
TEST(Spa, SixteenRoundsVisibleInRealTrace) {
  const auto pipeline =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  const auto run = pipeline.run_des(0x133457799BBCDFF1ull,
                                    0x0123456789ABCDEFull);
  const Trace windowed = run.trace.windowed_average(50);
  const SpaResult r = detect_rounds(windowed, 100, 220);
  EXPECT_GT(r.periodicity, 0.4);
  EXPECT_EQ(r.repetitions, 16);
}

// ---- DPA ----

TEST(Dpa, PredictBitMatchesGoldenFeistel) {
  // With the *correct* subkey chunk, the prediction must equal the real
  // S-box output bit of round 1.
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    const des::KeySchedule ks = des::key_schedule(key);
    for (int sbox = 0; sbox < 8; ++sbox) {
      const int chunk = DpaAttack::true_subkey_chunk(key, sbox);
      const std::uint64_t ip = des::initial_permutation(pt);
      const auto r0 = static_cast<std::uint32_t>(ip);
      const std::uint64_t x = des::expand(r0) ^ ks.subkeys[0];
      const auto six =
          static_cast<std::uint8_t>((x >> (42 - 6 * sbox)) & 0x3F);
      const std::uint8_t sb = des::sbox_lookup(sbox, six);
      for (int bit = 0; bit < 4; ++bit) {
        EXPECT_EQ(DpaAttack::predict_bit(pt, sbox, bit, chunk),
                  (sb >> (3 - bit)) & 1);
      }
    }
  }
}

TEST(Dpa, RecoversKeyFromSyntheticLeakage) {
  // Synthetic traces: sample j=17 leaks the target bit with some noise.
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const int truth = DpaAttack::true_subkey_chunk(key, 3);
  DpaConfig cfg;
  cfg.sbox = 3;
  cfg.bit = 1;
  DpaAttack attack(cfg);
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t pt = rng.next_u64();
    std::vector<double> v(64);
    for (auto& s : v) s = 100.0 + rng.next_gaussian();
    v[17] += 5.0 * DpaAttack::predict_bit(pt, 3, 1, truth);
    attack.add_trace(pt, Trace(std::move(v)));
  }
  const DpaResult r = attack.solve();
  EXPECT_EQ(r.best_guess, truth);
  EXPECT_GT(r.margin(), 1.2);
  EXPECT_EQ(util::argmax_abs(r.dom_best), 17u);
}

TEST(Dpa, WindowRestrictsAnalysis) {
  DpaConfig cfg;
  cfg.window_begin = 10;
  cfg.window_end = 20;
  DpaAttack attack(cfg);
  attack.add_trace(0, Trace(std::vector<double>(30, 1.0)));
  const DpaResult r = attack.solve();
  EXPECT_EQ(r.traces_used, 1u);
  // All partitions are degenerate with one trace; no dom computed.
  EXPECT_EQ(r.best_guess, -1);
}

TEST(Dpa, RejectsBadConfig) {
  DpaConfig bad;
  bad.sbox = 8;
  EXPECT_THROW(DpaAttack{bad}, std::invalid_argument);
  bad.sbox = 0;
  bad.bit = 4;
  EXPECT_THROW(DpaAttack{bad}, std::invalid_argument);
}

TEST(Dpa, ShortTraceRejected) {
  DpaAttack attack(DpaConfig{});
  attack.add_trace(0, Trace(std::vector<double>(30, 1.0)));
  EXPECT_THROW(attack.add_trace(1, Trace(std::vector<double>(20, 1.0))),
               std::invalid_argument);
}

// The paper's central security claim, as an experiment on the real system:
// the difference-of-means attack sees literally zero signal in the secured
// round-1 window once selective masking is on.
TEST(Dpa, MaskedRoundOneHasZeroSignal) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto masked =
      core::MaskingPipeline::des(compiler::Policy::kSelective);
  DpaConfig cfg;
  cfg.window_begin = 3000;
  cfg.window_end = 13000;
  DpaAttack attack(cfg);
  util::Rng rng(4);
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt, masked.run_des(key, pt, /*stop_after=*/13000).trace);
  }
  const DpaResult r = attack.solve();
  // Exactly zero up to the floating-point residue of subtracting the means
  // of identical per-cycle values.
  EXPECT_LT(r.best_peak, 1e-9);
}

// Full DPA key recovery on the unmasked device is exercised (with its
// required hundreds of traces) by bench_ext_dpa_attack; here we verify the
// pipeline-level plumbing end to end with a reduced trace budget: the
// correct guess must already rank in the upper tail.
TEST(Dpa, UnmaskedRoundOneShowsSignal) {
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const auto original =
      core::MaskingPipeline::des(compiler::Policy::kOriginal);
  DpaConfig cfg;
  cfg.window_begin = 3000;
  cfg.window_end = 13000;
  DpaAttack attack(cfg);
  util::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t pt = rng.next_u64();
    attack.add_trace(pt, original.run_des(key, pt, 13000).trace);
  }
  const DpaResult r = attack.solve();
  EXPECT_GT(r.best_peak, 0.0);
  const int truth = DpaAttack::true_subkey_chunk(key, 0);
  int rank = 0;
  for (int g = 0; g < 64; ++g) {
    if (r.peak_per_guess[static_cast<std::size_t>(g)] >
        r.peak_per_guess[static_cast<std::size_t>(truth)]) {
      ++rank;
    }
  }
  EXPECT_LT(rank, 20);  // upper tail even at 40 traces
}

// ---- GenericCpa edge-case regressions ----

// Regression: signed-correlation mode used to fold every peak through
// max(0.0, rho), so a guess whose rho is negative at every cycle reported
// 0.0 — indistinguishable from (and never rankable below) a true-zero
// guess, and with every guess negative the solver returned no best guess
// at all.
TEST(GenericCpa, SignedModeRanksAllNegativeCorrelations) {
  GenericCpa cpa(2, 0, SIZE_MAX, /*signed_correlation=*/true);
  // Cycle 0 carries the signal t = 0,1,2,3; cycle 1 is constant (skipped
  // by the variance threshold).  Guess 0's hypothesis is exactly -t
  // (rho = -1); guess 1's is anticorrelated but weaker (rho = -0.6).
  const int h0[4] = {3, 2, 1, 0};
  const int h1[4] = {2, 3, 0, 1};
  for (int i = 0; i < 4; ++i) {
    cpa.add_trace({h0[i], h1[i]},
                  Trace({static_cast<double>(i), 5.0}));
  }
  const GenericCpaResult r = cpa.solve();
  EXPECT_NEAR(r.corr_per_guess[0], -1.0, 1e-12);
  EXPECT_NEAR(r.corr_per_guess[1], -0.6, 1e-12);
  // -0.6 > -1.0: the weaker anticorrelation wins in signed mode.
  EXPECT_EQ(r.best_guess, 1);
  EXPECT_NEAR(r.best_corr, -0.6, 1e-12);
}

TEST(GenericCpa, SignedModeStillPrefersPositivePeaks) {
  GenericCpa cpa(2, 0, SIZE_MAX, /*signed_correlation=*/true);
  const int h0[4] = {3, 2, 1, 0};  // rho = -1
  const int h1[4] = {0, 1, 2, 3};  // rho = +1
  for (int i = 0; i < 4; ++i) {
    cpa.add_trace({h0[i], h1[i]}, Trace({static_cast<double>(i)}));
  }
  const GenericCpaResult r = cpa.solve();
  EXPECT_EQ(r.best_guess, 1);
  EXPECT_NEAR(r.best_corr, 1.0, 1e-12);
}

// Regression: a first trace shorter than a *bounded* window used to
// silently narrow the window, so every later full-length trace was
// analyzed over the truncated width.  It now gets the same rejection a
// short later trace always got.
TEST(GenericCpa, FirstTraceShorterThanBoundedWindowThrows) {
  GenericCpa cpa(2, 5, 20);
  EXPECT_THROW(cpa.add_trace({1, 0}, Trace(std::vector<double>(10, 1.0))),
               std::invalid_argument);
}

TEST(Dpa, FirstTraceShorterThanBoundedWindowThrows) {
  DpaConfig cfg;
  cfg.window_begin = 10;
  cfg.window_end = 40;
  DpaAttack attack(cfg);
  EXPECT_THROW(attack.add_trace(0, Trace(std::vector<double>(30, 1.0))),
               std::invalid_argument);
}

TEST(TraceWindowAdmit, OpenEndedWindowStillClampsToFirstTrace) {
  // The open-ended default means "to the end of the trace": the first
  // trace legitimately defines the width.
  GenericCpa cpa(2, 5);
  cpa.add_trace({1, 0}, Trace(std::vector<double>(10, 1.0)));
  cpa.add_trace({0, 1}, Trace(std::vector<double>(10, 2.0)));
  EXPECT_EQ(cpa.solve().traces_used, 2u);
}

// Regression: margin_over_runner_up returned 0.0 both for "no positive
// runner-up" (infinitely separated winner) and a genuine zero margin;
// the two are now distinguishable.
TEST(Margin, NoPositiveRunnerUpIsInfinite) {
  const double scores[3] = {0.5, 0.0, -0.2};
  const double m = margin_over_runner_up(scores, 3, 0, 0.5);
  EXPECT_TRUE(std::isinf(m));
  EXPECT_GT(m, 0.0);
}

TEST(Margin, GenuineZeroMarginStaysZero) {
  const double scores[3] = {0.0, 0.2, 0.1};
  // A zero best score over a positive runner-up is a real zero margin.
  EXPECT_DOUBLE_EQ(margin_over_runner_up(scores, 3, 0, 0.0), 0.0);
}

TEST(Margin, PositiveRunnerUpDivides) {
  const double scores[2] = {0.8, 0.4};
  EXPECT_DOUBLE_EQ(margin_over_runner_up(scores, 2, 0, 0.8), 2.0);
}

}  // namespace
}  // namespace emask::analysis
