// Differential testing: the cycle-accurate five-stage pipeline must match
// the functional reference interpreter on the architectural state (all
// registers + data memory) for randomly generated, hazard-rich programs.
//
// The generator produces structured, guaranteed-terminating programs:
// straight-line blocks of random ALU and memory operations over a small
// register pool (maximizing RAW hazards, load-use interlocks, and
// forwarding paths), optional data-dependent forward branches, and one
// counted loop.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "assembler/assembler.hpp"
#include "des/asm_generator.hpp"
#include "sim/interpreter.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"

namespace emask::sim {
namespace {

/// Registers the generator may freely clobber.  $s7 holds the scratch base
/// and $k1 the loop counter; both are excluded from random writes.
constexpr const char* kPool[] = {"$t0", "$t1", "$t2", "$t3", "$t4",
                                 "$t5", "$t6", "$t7", "$s0", "$s1",
                                 "$s2", "$s3", "$v0", "$a0"};
constexpr int kPoolSize = static_cast<int>(std::size(kPool));

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << ".data\nscratch: .space 256\n.text\nmain:\n";
    os << "  la $s7, scratch\n";
    for (const char* r : kPool) {
      os << "  li " << r << ", "
         << static_cast<std::int64_t>(
                static_cast<std::int32_t>(rng_.next_u32() & 0xFFFF)) -
                0x8000
         << "\n";
    }
    const int segments = 3 + static_cast<int>(rng_.next_below(4));
    for (int s = 0; s < segments; ++s) {
      // Maybe a data-dependent forward branch over part of the segment.
      const bool branch = rng_.next_below(2) == 0;
      if (branch) {
        os << "  " << branch_op() << " " << reg() << ", " << reg() << ", seg"
           << s << "\n";
      }
      emit_block(os, 4 + static_cast<int>(rng_.next_below(10)));
      if (branch) os << "seg" << s << ":\n";
      emit_block(os, 2 + static_cast<int>(rng_.next_below(6)));
    }
    // One counted loop: fixed trip count, body full of hazards.
    os << "  li $k1, " << (2 + rng_.next_below(6)) << "\n";
    os << "loop:\n";
    emit_block(os, 3 + static_cast<int>(rng_.next_below(8)));
    os << "  addiu $k1, $k1, -1\n";
    os << "  bne $k1, $zero, loop\n";
    emit_block(os, 3);
    os << "  halt\n";
    return os.str();
  }

 private:
  const char* reg() { return kPool[rng_.next_below(kPoolSize)]; }
  const char* branch_op() {
    return rng_.next_below(2) == 0 ? "beq" : "bne";
  }
  std::int64_t aligned_offset() {
    return static_cast<std::int64_t>(rng_.next_below(64)) * 4;
  }

  void emit_block(std::ostringstream& os, int n) {
    for (int i = 0; i < n; ++i) {
      switch (rng_.next_below(12)) {
        case 0:
          os << "  lw " << reg() << ", " << aligned_offset() << "($s7)\n";
          break;
        case 1:
          os << "  sw " << reg() << ", " << aligned_offset() << "($s7)\n";
          break;
        case 2:
          os << "  addiu " << reg() << ", " << reg() << ", "
             << static_cast<std::int64_t>(rng_.next_below(256)) - 128 << "\n";
          break;
        case 3:
          os << "  sll " << reg() << ", " << reg() << ", "
             << rng_.next_below(32) << "\n";
          break;
        case 4:
          os << "  srl " << reg() << ", " << reg() << ", "
             << rng_.next_below(32) << "\n";
          break;
        case 5:
          os << "  sra " << reg() << ", " << reg() << ", "
             << rng_.next_below(32) << "\n";
          break;
        case 6: {
          const char* three[] = {"addu", "subu", "and", "or",
                                 "xor",  "nor",  "slt", "sltu"};
          os << "  " << three[rng_.next_below(8)] << " " << reg() << ", "
             << reg() << ", " << reg() << "\n";
          break;
        }
        case 7: {
          const char* vshift[] = {"sllv", "srlv", "srav"};
          os << "  " << vshift[rng_.next_below(3)] << " " << reg() << ", "
             << reg() << ", " << reg() << "\n";
          break;
        }
        case 8:
          os << "  lui " << reg() << ", " << rng_.next_below(0x10000) << "\n";
          break;
        case 9: {
          const char* logical[] = {"andi", "ori", "xori"};
          os << "  " << logical[rng_.next_below(3)] << " " << reg() << ", "
             << reg() << ", " << rng_.next_below(0x10000) << "\n";
          break;
        }
        case 10:
          os << "  slti " << reg() << ", " << reg() << ", "
             << static_cast<std::int64_t>(rng_.next_below(0x8000)) << "\n";
          break;
        default:
          os << "  move " << reg() << ", " << reg() << "\n";
          break;
      }
    }
  }

  util::Rng rng_;
};

/// Parameter: (seed index, cache enabled).
class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DifferentialTest, PipelineMatchesInterpreter) {
  const auto [seed, with_cache] = GetParam();
  ProgramFuzzer fuzzer(0xD1FF0000ull + static_cast<std::uint64_t>(seed));
  const std::string source = fuzzer.generate();
  const assembler::Program program = assembler::assemble(source);

  Interpreter golden(program);
  golden.run();

  SimConfig config;
  if (with_cache) {
    CacheConfig cache;
    cache.size_bytes = 128;  // tiny: maximal miss/conflict traffic
    cache.line_bytes = 16;
    cache.miss_penalty = 3;
    config.dcache = cache;
  }
  Pipeline pipeline(program, config);
  const SimResult result = pipeline.run();

  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.instructions, golden.instructions())
      << "retired-count mismatch";
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    EXPECT_EQ(pipeline.reg(static_cast<isa::Reg>(r)),
              golden.reg(static_cast<isa::Reg>(r)))
        << "register " << isa::reg_name(static_cast<isa::Reg>(r))
        << " diverged; program:\n"
        << source;
  }
  const std::uint32_t base = assembler::kDataBase;
  for (std::uint32_t off = 0; off < 256; off += 4) {
    ASSERT_EQ(pipeline.memory().load_word(base + off),
              golden.memory().load_word(base + off))
        << "memory diverged at offset " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, DifferentialTest,
    ::testing::Combine(::testing::Range(0, 40), ::testing::Bool()),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_cached" : "_flat");
    });

TEST(DifferentialDes, InterpreterEncryptsDesCorrectly) {
  // The oracle itself must also be right: running the generated DES program
  // functionally reproduces the FIPS ciphertext.
  const assembler::Program program = assembler::assemble(des::generate_des_asm(
      0x133457799BBCDFF1ull, 0x0123456789ABCDEFull, {}));
  Interpreter interp(program);
  interp.run();
  EXPECT_EQ(des::read_cipher(interp.memory(), program),
            0x85E813540F0AB405ull);
}

}  // namespace
}  // namespace emask::sim
