// Hiding countermeasures (WDDL, random precharge, NOP shuffling):
// functional equivalence with the unprotected device, the energy behavior
// each policy promises, fork-eligibility rules, shuffle-aware attack
// windows, and campaign-level determinism.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/generic_cpa.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/batch_runner.hpp"
#include "core/masking_pipeline.hpp"
#include "core/phase_profile.hpp"
#include "hiding/policy.hpp"

namespace emask::core {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
constexpr std::uint64_t kPlain = 0x0123456789ABCDEFull;

MaskingPipeline device(const std::string& name) {
  return MaskingPipeline::des(hiding::countermeasure_from_name(name));
}

// Same countermeasure on a program with a hoisted key schedule, i.e. a
// `fork` marker — the snapshot/fork eligibility tests need one.
MaskingPipeline forkable_device(const std::string& name) {
  des::DesAsmOptions opts;
  opts.hoist_key_schedule = true;
  return MaskingPipeline::des(hiding::countermeasure_from_name(name),
                              energy::TechParams::smartcard_025um(), opts);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expect_identical(const analysis::TraceSet& a,
                      const analysis::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.inputs, b.inputs);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.traces[i].samples(), b.traces[i].samples()) << "trace " << i;
  }
}

// ------------------------------------------------------------ naming

TEST(Hiding, CountermeasureNamesRoundTrip) {
  for (const auto& m : hiding::masking_names()) {
    const hiding::Countermeasure bare(m.value);
    EXPECT_EQ(hiding::countermeasure_from_name(bare.name()), bare)
        << bare.name();
    for (const auto& h : hiding::hiding_names()) {
      const hiding::Countermeasure c(m.value, h.value);
      EXPECT_EQ(hiding::countermeasure_from_name(c.name()), c) << c.name();
    }
  }
  EXPECT_THROW((void)hiding::countermeasure_from_name("stealthy"),
               std::invalid_argument);
}

// ------------------------------------------------- functional equivalence

// Hiding reshapes the energy envelope, never the computation: every
// countermeasure produces the unprotected device's ciphertext.
TEST(Hiding, EveryCountermeasureProducesTheOriginalCiphertext) {
  const std::uint64_t expected = device("original").run_des(kKey, kPlain).cipher;
  ASSERT_NE(expected, 0u);
  for (const char* name :
       {"wddl", "random_precharge", "shuffle_nop", "selective+wddl"}) {
    const EncryptionRun run = device(name).run_des(kKey, kPlain);
    EXPECT_EQ(run.cipher, expected) << name;
  }
}

// ------------------------------------------------------------ wddl energy

// Dual-rail precharge logic consumes the same energy every cycle no matter
// what data flows through it: two encryptions of different plaintexts must
// produce bitwise-identical traces (coupling is zero in the base model).
TEST(Hiding, WddlTraceIsPlaintextIndependent) {
  const MaskingPipeline wddl = device("wddl");
  const EncryptionRun a = wddl.run_des(kKey, kPlain);
  const EncryptionRun b = wddl.run_des(kKey, ~kPlain);
  ASSERT_EQ(a.trace.samples().size(), b.trace.samples().size());
  EXPECT_EQ(a.trace.samples(), b.trace.samples());
  EXPECT_NE(a.cipher, b.cipher);
}

// ...whereas the unprotected device visibly leaks the same plaintext pair.
TEST(Hiding, OriginalTraceIsNotPlaintextIndependent) {
  const MaskingPipeline original = device("original");
  const EncryptionRun a = original.run_des(kKey, kPlain);
  const EncryptionRun b = original.run_des(kKey, ~kPlain);
  EXPECT_NE(a.trace.samples(), b.trace.samples());
}

// ------------------------------------------------------- random precharge

// The precharge stream is a pure function of (base seed, plaintext):
// repeating a run reproduces it exactly, reseeding the device changes the
// envelope but never the ciphertext.
TEST(Hiding, RandomPrechargeIsDeterministicPerSeed) {
  MaskingPipeline rp = device("random_precharge");
  const EncryptionRun a = rp.run_des(kKey, kPlain);
  const EncryptionRun b = rp.run_des(kKey, kPlain);
  EXPECT_EQ(a.trace.samples(), b.trace.samples());
  rp.set_hiding_seed(rp.hiding_seed() ^ 0xDEADBEEFull);
  const EncryptionRun c = rp.run_des(kKey, kPlain);
  EXPECT_NE(a.trace.samples(), c.trace.samples());
  EXPECT_EQ(a.cipher, c.cipher);
}

// random_precharge draws its stream from cycle 0, so a shared snapshot
// prefix would pin every forked trace to one random stream.  The device
// must refuse to fork — loudly.
TEST(Hiding, RandomPrechargeRefusesSnapshotFork) {
  const MaskingPipeline rp = forkable_device("random_precharge");
  EXPECT_TRUE(rp.has_fork_point());
  EXPECT_FALSE(rp.fork_eligible());
  EXPECT_THROW((void)rp.snapshot_des(kKey), std::logic_error);

  BatchConfig bc;
  bc.snapshot = SnapshotMode::kRequire;
  BatchRunner runner(rp, bc);
  EXPECT_THROW((void)runner.capture(2, random_plaintexts(kKey, 1)),
               std::logic_error);
}

// SnapshotMode::kAuto degrades to cold starts for such a device and stays
// bit-identical at any thread count.
TEST(Hiding, RandomPrechargeAutoSnapshotMatchesColdAtAnyThreadCount) {
  const MaskingPipeline rp = forkable_device("random_precharge");
  const InputGenerator gen = random_plaintexts(kKey, 0xBA7C4);
  BatchConfig cold;
  cold.stop_after_cycles = 1500;
  cold.snapshot = SnapshotMode::kOff;
  cold.threads = 1;
  const analysis::TraceSet reference = BatchRunner(rp, cold).capture(6, gen);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchConfig aut = cold;
    aut.snapshot = SnapshotMode::kAuto;
    aut.threads = threads;
    expect_identical(reference, BatchRunner(rp, aut).capture(6, gen));
  }
}

// ---------------------------------------------------------- nop shuffling

TEST(Hiding, ShuffleScheduleIsAPureFunctionOfSeedAndPlaintext) {
  const MaskingPipeline a = device("shuffle_nop");
  const MaskingPipeline b = device("shuffle_nop");
  EXPECT_EQ(a.run_hiding_seed(kPlain), b.run_hiding_seed(kPlain));
  EXPECT_NE(a.run_hiding_seed(kPlain), a.run_hiding_seed(kPlain + 1));
  const std::vector<std::uint32_t> schedule =
      MaskingPipeline::shuffle_schedule(a.run_hiding_seed(kPlain));
  ASSERT_EQ(schedule.size(), des::kShuffleSlotCount);
  for (const std::uint32_t d : schedule) {
    EXPECT_LE(d, hiding::kShuffleNopMaxDelay);
  }
  EXPECT_EQ(schedule,
            MaskingPipeline::shuffle_schedule(b.run_hiding_seed(kPlain)));
}

// Different plaintexts draw different schedules, so the same round work
// lands on different cycles — the temporal misalignment the policy sells.
TEST(Hiding, ShuffleMisalignsTracesAcrossPlaintexts) {
  const MaskingPipeline sh = device("shuffle_nop");
  const EncryptionRun a = sh.run_des(kKey, kPlain);
  const EncryptionRun b = sh.run_des(kKey, kPlain + 1);
  EXPECT_EQ(a.cipher, device("original").run_des(kKey, kPlain).cipher);
  EXPECT_NE(a.trace.samples().size(), b.trace.samples().size());
}

// The shuffle-aware window starts where the zero-delay schedule starts and
// ends late enough to cover the all-max-delay schedule.
TEST(Hiding, ShuffleAwareWindowBoundsWidenTheFixedWindow) {
  const MaskingPipeline sh = device("shuffle_nop");
  const SboxWindow fixed = des_round1_sbox_window(sh.program(), 0);
  const SboxWindow bounds = des_round1_sbox_window_bounds(
      sh.program(), 0, hiding::kShuffleNopMaxDelay);
  ASSERT_TRUE(fixed.valid());
  ASSERT_TRUE(bounds.valid());
  EXPECT_EQ(bounds.begin, fixed.begin);
  EXPECT_GT(bounds.end, fixed.end);
  // Programs without nop slots fall back to the fixed window exactly.
  const MaskingPipeline plain = device("original");
  const SboxWindow same = des_round1_sbox_window_bounds(
      plain.program(), 0, hiding::kShuffleNopMaxDelay);
  const SboxWindow zero = des_round1_sbox_window(plain.program(), 0);
  EXPECT_EQ(same.begin, zero.begin);
  EXPECT_EQ(same.end, zero.end);
}

// Regression for the silent-truncation bug class: a trace captured only up
// to the *fixed-schedule* window cannot cover the shuffle-aware bounds, and
// the analysis layer must reject it loudly instead of narrowing the window.
TEST(Hiding, TruncatedShuffledTraceFailsLoudly) {
  const MaskingPipeline sh = device("shuffle_nop");
  const SboxWindow fixed = des_round1_sbox_window(sh.program(), 0);
  const SboxWindow bounds = des_round1_sbox_window_bounds(
      sh.program(), 0, hiding::kShuffleNopMaxDelay);
  ASSERT_TRUE(bounds.valid());
  const EncryptionRun truncated = sh.run_des(kKey, kPlain, fixed.end);
  analysis::TraceWindow window(bounds.begin, bounds.end);
  EXPECT_THROW((void)window.admit(truncated.trace, "HidingTest"),
               std::invalid_argument);
}

// ---------------------------------------------------- batch determinism

TEST(Hiding, BatchCaptureIsThreadCountInvariantForEveryHidingPolicy) {
  for (const char* name : {"wddl", "random_precharge", "shuffle_nop"}) {
    const MaskingPipeline dev = device(name);
    const InputGenerator gen = random_plaintexts(kKey, 0xBA7C4);
    BatchConfig bc;
    bc.stop_after_cycles = 1500;
    bc.threads = 1;
    const analysis::TraceSet one = BatchRunner(dev, bc).capture(6, gen);
    for (const std::size_t threads : {2u, 8u}) {
      BatchConfig many = bc;
      many.threads = threads;
      expect_identical(one, BatchRunner(dev, many).capture(6, gen));
    }
  }
}

// ------------------------------------------------------ campaign identity

// The zoo end-to-end: every hiding policy runs through the campaign layer,
// emits a disclosure curve for its attack scenario, and the whole output
// directory is byte-identical across thread counts and an
// interrupt-then-resume run.
TEST(HidingCampaign, JobsAndResumeAreByteIdentical) {
  const std::string spec_text =
      "[campaign]\n"
      "name = hiding_zoo\n"
      "window_end = 4000\n"
      "[axes]\n"
      "policy = original, wddl, random_precharge, shuffle_nop\n"
      "analysis = energy, cpa\n"
      "traces = 4\n";
  const campaign::CampaignSpec spec = campaign::CampaignSpec::parse(spec_text);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_hiding_zoo";
  fs::remove_all(base);
  const fs::path dir_a = base / "straight";
  const fs::path dir_b = base / "resumed";

  campaign::RunnerOptions options_a;
  options_a.out_dir = dir_a.string();
  options_a.jobs = 2;
  options_a.quiet = true;
  const campaign::CampaignReport full =
      campaign::CampaignRunner(spec, options_a).run();
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.executed, 8u);

  campaign::RunnerOptions options_b = options_a;
  options_b.out_dir = dir_b.string();
  options_b.jobs = 8;
  options_b.limit = 4;
  const campaign::CampaignReport partial =
      campaign::CampaignRunner(spec, options_b).run();
  EXPECT_FALSE(partial.complete);

  campaign::RunnerOptions options_c = options_b;
  options_c.limit = 0;
  options_c.resume = true;
  options_c.jobs = 1;
  const campaign::CampaignReport resumed =
      campaign::CampaignRunner(spec, options_c).run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed, 4u);

  EXPECT_EQ(read_file(dir_a / "manifest.json"),
            read_file(dir_b / "manifest.json"));
  EXPECT_EQ(read_file(dir_a / "summary.csv"),
            read_file(dir_b / "summary.csv"));
  for (const auto& entry : fs::directory_iterator(dir_a / "scenarios")) {
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const fs::path other = dir_b / "scenarios" / entry.path().filename() /
                             file.path().filename();
      EXPECT_EQ(read_file(file.path()), read_file(other))
          << "mismatch at " << other;
    }
  }
  // Every attack scenario — hiding policies included — carries its
  // traces-to-disclosure curve.
  std::size_t disclosure_curves = 0;
  for (const auto& entry : fs::directory_iterator(dir_a / "scenarios")) {
    if (fs::exists(entry.path() / "disclosure.csv")) ++disclosure_curves;
  }
  EXPECT_EQ(disclosure_curves, 4u);
  fs::remove_all(base);
}

// Hiding is a DES-device concept: an AES/SHA campaign axis naming one must
// fail at parse time, not mid-run.
TEST(HidingCampaign, NonDesCipherRejectsHidingPolicies) {
  const campaign::CampaignSpec spec =
      campaign::CampaignSpec::parse("[campaign]\n"
                                    "name = t\n"
                                    "[axes]\n"
                                    "cipher = aes\n"
                                    "policy = wddl\n");
  EXPECT_THROW((void)spec.expand(), campaign::SpecError);
}

}  // namespace
}  // namespace emask::core
