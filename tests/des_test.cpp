// Golden DES model: FIPS known-answer vectors, round-trip properties, and
// exposed internals.
#include "des/des.hpp"

#include <gtest/gtest.h>

#include "des/tables.hpp"
#include "util/rng.hpp"

namespace emask::des {
namespace {

// The classic worked example (used in many textbooks and test suites).
TEST(DesGolden, KnownAnswerClassic) {
  EXPECT_EQ(encrypt_block(0x0123456789ABCDEFull, 0x133457799BBCDFF1ull),
            0x85E813540F0AB405ull);
}

// NIST SP 800-17 style vectors.
TEST(DesGolden, KnownAnswerWeakKeyAllZeroPlain) {
  EXPECT_EQ(encrypt_block(0x0000000000000000ull, 0x0101010101010101ull),
            0x8CA64DE9C1B123A7ull);
}

TEST(DesGolden, KnownAnswerOnesKey) {
  // Complement of the all-zero weak-key vector (complementation property).
  EXPECT_EQ(encrypt_block(0xFFFFFFFFFFFFFFFFull, 0xFEFEFEFEFEFEFEFEull),
            0x7359B2163E4EDC58ull);
}

TEST(DesGolden, DecryptInvertsEncrypt) {
  util::Rng rng(0xDE5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(decrypt_block(encrypt_block(pt, key), key), pt);
  }
}

TEST(DesGolden, ParityBitsAreIgnored) {
  util::Rng rng(0xBEEF);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    // Flipping any parity bit (LSB of each byte) must not change the cipher.
    const std::uint64_t key2 = key ^ 0x0101010101010101ull;
    EXPECT_EQ(encrypt_block(pt, key), encrypt_block(pt, key2));
  }
}

TEST(DesGolden, AvalancheSingleKeyBit) {
  // Complementing one effective key bit changes roughly half the cipher.
  const std::uint64_t pt = 0x0123456789ABCDEFull;
  const std::uint64_t k1 = 0x133457799BBCDFF1ull;
  const std::uint64_t k2 = k1 ^ (1ull << 62);  // FIPS key bit 2 (non-parity)
  const int flipped =
      std::popcount(encrypt_block(pt, k1) ^ encrypt_block(pt, k2));
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(DesGolden, InitialAndFinalPermutationsInverse) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.next_u64();
    EXPECT_EQ(final_permutation(initial_permutation(x)), x);
    EXPECT_EQ(initial_permutation(final_permutation(x)), x);
  }
}

TEST(DesGolden, ExpandProducesFortyEightBits) {
  EXPECT_EQ(expand(0xFFFFFFFFu), (1ull << 48) - 1);
  EXPECT_EQ(expand(0), 0u);
}

TEST(DesGolden, SboxLookupMatchesTableIndexing) {
  // six bits b1..b6: row = b1b6, col = b2b3b4b5.
  for (int s = 0; s < 8; ++s) {
    for (int six = 0; six < 64; ++six) {
      const int row = ((six >> 4) & 2) | (six & 1);
      const int col = (six >> 1) & 0xF;
      EXPECT_EQ(sbox_lookup(s, static_cast<std::uint8_t>(six)),
                kSbox[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(row * 16 + col)]);
    }
  }
}

TEST(DesGolden, KeyScheduleSubkeysAre48Bits) {
  const KeySchedule ks = key_schedule(0x133457799BBCDFF1ull);
  for (const std::uint64_t k : ks.subkeys) {
    EXPECT_EQ(k >> 48, 0u);
  }
  // First subkey of the classic example.
  EXPECT_EQ(ks.subkeys[0], 0b000110110000001011101111111111000111000001110010ull);
}

TEST(DesGolden, RoundStateMatchesFullCipher) {
  const std::uint64_t pt = 0x0123456789ABCDEFull;
  const std::uint64_t key = 0x133457799BBCDFF1ull;
  const RoundState st = round_state(pt, key, 16);
  const std::uint64_t out = final_permutation(
      (static_cast<std::uint64_t>(st.r) << 32) | st.l);
  EXPECT_EQ(out, encrypt_block(pt, key));
}

TEST(DesGolden, RoundStateZeroIsInitialPermutation) {
  const std::uint64_t pt = 0xA5A5A5A55A5A5A5Aull;
  const RoundState st = round_state(pt, 0x133457799BBCDFF1ull, 0);
  const std::uint64_t ip = initial_permutation(pt);
  EXPECT_EQ(st.l, static_cast<std::uint32_t>(ip >> 32));
  EXPECT_EQ(st.r, static_cast<std::uint32_t>(ip & 0xFFFFFFFFu));
}

TEST(DesGolden, WithOddParityProducesOddBytes) {
  util::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t k = with_odd_parity(rng.next_u64());
    for (int byte = 0; byte < 8; ++byte) {
      const auto b = static_cast<std::uint8_t>((k >> (8 * byte)) & 0xFF);
      EXPECT_EQ(std::popcount(static_cast<unsigned>(b)) % 2, 1);
    }
  }
}

TEST(DesGolden, TripleDesEdeRoundTrip) {
  util::Rng rng(0x3DE5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t k1 = rng.next_u64();
    const std::uint64_t k2 = rng.next_u64();
    const std::uint64_t k3 = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(decrypt_block_ede3(encrypt_block_ede3(pt, k1, k2, k3), k1, k2,
                                 k3),
              pt);
  }
}

TEST(DesGolden, TripleDesWithEqualKeysIsSingleDes) {
  const std::uint64_t k = 0x133457799BBCDFF1ull;
  const std::uint64_t pt = 0x0123456789ABCDEFull;
  EXPECT_EQ(encrypt_block_ede3(pt, k, k, k), encrypt_block(pt, k));
}

TEST(DesGolden, CbcRoundTripAndChaining) {
  util::Rng rng(0xCBC);
  const std::uint64_t key = rng.next_u64();
  const std::uint64_t iv = rng.next_u64();
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(rng.next_u64());
  const auto ct = cbc_encrypt(blocks, key, iv);
  EXPECT_EQ(cbc_decrypt(ct, key, iv), blocks);
  // First block chains the IV.
  EXPECT_EQ(ct[0], encrypt_block(blocks[0] ^ iv, key));
  // Identical plaintext blocks yield different ciphertext blocks.
  const auto ct2 =
      cbc_encrypt(std::vector<std::uint64_t>{7, 7, 7}, key, iv);
  EXPECT_NE(ct2[0], ct2[1]);
  EXPECT_NE(ct2[1], ct2[2]);
}

// Complementation property: DES(~P, ~K) = ~DES(P, K).
TEST(DesGolden, ComplementationProperty) {
  util::Rng rng(0xC0);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(encrypt_block(~pt, ~key), ~encrypt_block(pt, key));
  }
}

}  // namespace
}  // namespace emask::des
