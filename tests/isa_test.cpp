#include <gtest/gtest.h>

#include "isa/encoding.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"
#include "util/rng.hpp"

namespace emask::isa {
namespace {

TEST(Opcode, MnemonicRoundTrip) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto parsed = opcode_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(parsed.has_value()) << mnemonic(op);
    EXPECT_EQ(*parsed, op);
  }
}

TEST(Opcode, UnknownMnemonicRejected) {
  EXPECT_FALSE(opcode_from_mnemonic("frobnicate").has_value());
  EXPECT_FALSE(opcode_from_mnemonic("").has_value());
}

TEST(Opcode, SecurableSetCoversPaperClassesPlusLogic) {
  // The paper defines secure versions for assignment (lw/sw/move), XOR,
  // shift, and indexing (moves lower to addu/or); we additionally secure
  // the logic unit (and/andi/nor) for non-DES kernels like SHA-1.
  for (const Opcode op : {Opcode::kLw, Opcode::kSw, Opcode::kXor,
                          Opcode::kXori, Opcode::kSll, Opcode::kSrl,
                          Opcode::kSra, Opcode::kSllv, Opcode::kSrlv,
                          Opcode::kSrav, Opcode::kAddu, Opcode::kAddiu,
                          Opcode::kOr, Opcode::kOri, Opcode::kAnd,
                          Opcode::kAndi, Opcode::kNor}) {
    EXPECT_TRUE(info(op).securable) << mnemonic(op);
  }
  // Control flow and comparisons have no secure form: a secret-dependent
  // branch is a structural leak the compiler diagnoses instead.
  for (const Opcode op : {Opcode::kBeq, Opcode::kJ, Opcode::kSubu,
                          Opcode::kSlt, Opcode::kHalt}) {
    EXPECT_FALSE(info(op).securable) << mnemonic(op);
  }
}

TEST(Opcode, ClassificationFlags) {
  EXPECT_TRUE(info(Opcode::kLw).is_load);
  EXPECT_TRUE(info(Opcode::kSw).is_store);
  EXPECT_FALSE(info(Opcode::kSw).writes_rd);
  EXPECT_TRUE(info(Opcode::kBne).is_branch);
  EXPECT_TRUE(info(Opcode::kJal).is_jump);
  EXPECT_TRUE(info(Opcode::kJal).writes_rd);
  EXPECT_FALSE(info(Opcode::kJ).writes_rd);
  EXPECT_EQ(info(Opcode::kXor).unit, FuncUnit::kXorUnit);
  EXPECT_EQ(info(Opcode::kLw).unit, FuncUnit::kAdder);  // address generation
}

TEST(Registers, NamesRoundTrip) {
  for (int i = 0; i < kNumRegisters; ++i) {
    const auto r = static_cast<Reg>(i);
    const auto parsed = parse_reg(reg_name(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, r);
  }
}

TEST(Registers, NumericForms) {
  EXPECT_EQ(parse_reg("$0"), kZero);
  EXPECT_EQ(parse_reg("$31"), kRa);
  EXPECT_EQ(parse_reg("$8"), kT0);
  EXPECT_FALSE(parse_reg("$32").has_value());
  EXPECT_FALSE(parse_reg("t0").has_value());
  EXPECT_FALSE(parse_reg("$").has_value());
  EXPECT_FALSE(parse_reg("$1x").has_value());
}

TEST(Instruction, DestAndSources) {
  const Instruction add = make_rtype(Opcode::kAddu, 3, 1, 2);
  EXPECT_EQ(add.dest(), Reg{3});
  EXPECT_EQ(add.src1(), Reg{1});
  EXPECT_EQ(add.src2(), Reg{2});

  const Instruction lw = make_loadstore(Opcode::kLw, 5, 8, 4);
  EXPECT_EQ(lw.dest(), Reg{5});
  EXPECT_EQ(lw.src1(), Reg{4});
  EXPECT_FALSE(lw.src2().has_value());

  const Instruction sw = make_loadstore(Opcode::kSw, 5, 8, 4);
  EXPECT_FALSE(sw.dest().has_value());
  EXPECT_EQ(sw.src1(), Reg{4});
  EXPECT_EQ(sw.src2(), Reg{5});

  const Instruction sll = make_shift(Opcode::kSll, 2, 7, 3);
  EXPECT_EQ(sll.dest(), Reg{2});
  EXPECT_EQ(sll.src1(), Reg{7});  // shift-by-immediate reads rt

  const Instruction jal = make_jump(Opcode::kJal, 10);
  EXPECT_EQ(jal.dest(), kRa);

  const Instruction bltz = make_branch(Opcode::kBltz, 9, 0, -4);
  EXPECT_EQ(bltz.src1(), Reg{9});
  EXPECT_FALSE(bltz.src2().has_value());
}

TEST(Instruction, WritesToZeroAreDiscarded) {
  const Instruction add = make_rtype(Opcode::kAddu, kZero, 1, 2);
  EXPECT_FALSE(add.dest().has_value());
}

TEST(Instruction, ToStringSecurePrefix) {
  Instruction lw = make_loadstore(Opcode::kLw, 3, 0, 4, /*secure=*/true);
  EXPECT_EQ(lw.to_string(), "slw $v1,0($a0)");
  lw.secure = false;
  EXPECT_EQ(lw.to_string(), "lw $v1,0($a0)");
}

TEST(Instruction, NopIsSllZero) {
  const Instruction nop = make_nop();
  EXPECT_EQ(nop.op, Opcode::kSll);
  EXPECT_FALSE(nop.dest().has_value());
}

// ---- Encoding ----

TEST(Encoding, SecureBitIsBit32) {
  const Instruction x = make_rtype(Opcode::kXor, 3, 1, 2, /*secure=*/true);
  const EncodedWord w = encode(x);
  EXPECT_NE(w & kSecureBit, 0u);
  Instruction y = x;
  y.secure = false;
  EXPECT_EQ(encode(y), w & ~kSecureBit);
}

TEST(Encoding, MatchesMipsReferencePatterns) {
  // addu $t0,$t1,$t2 -> 0x012A4021 in MIPS-I.
  EXPECT_EQ(encode(make_rtype(Opcode::kAddu, 8, 9, 10)), 0x012A4021u);
  // lw $t0, 4($sp) -> 0x8FA80004.
  EXPECT_EQ(encode(make_loadstore(Opcode::kLw, 8, 4, 29)), 0x8FA80004u);
  // sll $t0,$t1,5 -> 0x00094140.
  EXPECT_EQ(encode(make_shift(Opcode::kSll, 8, 9, 5)), 0x00094140u);
  // beq $t0,$t1,-1 -> 0x1109FFFF.
  EXPECT_EQ(encode(make_branch(Opcode::kBeq, 8, 9, -1)), 0x1109FFFFu);
}

TEST(Encoding, RoundTripAllOpcodesRandomFields) {
  util::Rng rng(0xE11C0DE);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto op = static_cast<Opcode>(rng.next_below(kNumOpcodes));
    const OpcodeInfo& oi = info(op);
    Instruction inst;
    inst.op = op;
    inst.secure = (rng.next_u64() & 1) != 0;
    switch (oi.format) {
      case Format::kRegister:
        inst.rd = static_cast<Reg>(rng.next_below(32));
        inst.rs = static_cast<Reg>(rng.next_below(32));
        inst.rt = static_cast<Reg>(rng.next_below(32));
        break;
      case Format::kShiftImm:
        inst.rd = static_cast<Reg>(rng.next_below(32));
        inst.rt = static_cast<Reg>(rng.next_below(32));
        inst.imm = static_cast<std::int32_t>(rng.next_below(32));
        break;
      case Format::kImmediate:
        inst.rt = static_cast<Reg>(rng.next_below(32));
        if (op != Opcode::kLui) inst.rs = static_cast<Reg>(rng.next_below(32));
        // andi/ori/xori/lui decode as zero-extended.
        inst.imm = (op == Opcode::kAndi || op == Opcode::kOri ||
                    op == Opcode::kXori || op == Opcode::kLui)
                       ? static_cast<std::int32_t>(rng.next_below(65536))
                       : static_cast<std::int32_t>(rng.next_below(65536)) -
                             32768;
        break;
      case Format::kLoadStore:
        inst.rt = static_cast<Reg>(rng.next_below(32));
        inst.rs = static_cast<Reg>(rng.next_below(32));
        inst.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
        break;
      case Format::kBranch:
        inst.rs = static_cast<Reg>(rng.next_below(32));
        if (op == Opcode::kBeq || op == Opcode::kBne) {
          inst.rt = static_cast<Reg>(rng.next_below(32));
        }
        inst.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
        break;
      case Format::kJump:
        inst.imm = static_cast<std::int32_t>(rng.next_below(1 << 26));
        break;
      case Format::kJumpReg:
        inst.rs = static_cast<Reg>(rng.next_below(32));
        if (op == Opcode::kJalr) inst.rd = static_cast<Reg>(rng.next_below(32));
        break;
      case Format::kNullary:
        break;
    }
    const Instruction decoded = decode(encode(inst));
    EXPECT_EQ(decoded, inst) << inst.to_string() << " vs "
                             << decoded.to_string();
  }
}

TEST(Encoding, OutOfRangeFieldsThrow) {
  EXPECT_THROW((void)encode(make_itype(Opcode::kAddiu, 1, 2, 70000)),
               std::invalid_argument);
  EXPECT_THROW((void)encode(make_shift(Opcode::kSll, 1, 2, 32)),
               std::invalid_argument);
  EXPECT_THROW((void)encode(make_jump(Opcode::kJ, 1 << 26)), std::invalid_argument);
  EXPECT_THROW((void)encode(make_branch(Opcode::kBeq, 1, 2, -40000)),
               std::invalid_argument);
}

TEST(Encoding, UnknownPatternsThrow) {
  EXPECT_THROW((void)decode(0x0000003Fu), std::invalid_argument);  // SPECIAL funct 3f
  EXPECT_THROW((void)decode(0xC0000000u), std::invalid_argument);  // primary 0x30
}

TEST(Encoding, AllZerosDecodesToNop) {
  const Instruction nop = decode(0);
  EXPECT_EQ(nop.op, Opcode::kSll);
  EXPECT_EQ(nop.imm, 0);
  EXPECT_FALSE(nop.secure);
}

}  // namespace
}  // namespace emask::isa
