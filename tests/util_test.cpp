#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/argparse.hpp"
#include "util/bitops.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/ini.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace emask::util {
namespace {

TEST(Bitops, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0);
  EXPECT_EQ(hamming_distance(0xFFFFFFFFu, 0), 32);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming_distance(0x80000000u, 0), 1);
}

TEST(Bitops, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b100, 2), 1u);
  EXPECT_EQ(bit_of(0b100, 1), 0u);
  EXPECT_EQ(with_bit(0, 5, 1), 32u);
  EXPECT_EQ(with_bit(0xFFFFFFFFu, 0, 0), 0xFFFFFFFEu);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFFF, 16), 0xFFFFFFFFu);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 0x7FFFu);
  EXPECT_EQ(sign_extend(0x80, 8), 0xFFFFFF80u);
  EXPECT_EQ(sign_extend(0x7F, 8), 0x7Fu);
}

TEST(Bitops, PackUnpackRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.next_u64();
    EXPECT_EQ(pack_block_msb_first(unpack_block_msb_first(x)), x);
  }
}

TEST(Bitops, UnpackIsMsbFirst) {
  const auto bits = unpack_block_msb_first(1ull << 63);
  EXPECT_EQ(bits[0], 1u);
  for (int i = 1; i < 64; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0u);
}

TEST(Bitops, PackRejectsWrongSize) {
  EXPECT_THROW((void)pack_block_msb_first(std::vector<std::uint32_t>(63)),
               std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NthGivesRandomAccessIntoTheStream) {
  // Rng::nth(seed, n) must equal the (n+1)-th sequential draw — this is
  // what lets parallel trace capture reproduce a serial plaintext stream.
  for (const std::uint64_t seed : {0ull, 42ull, 0xD9Aull, ~0ull}) {
    Rng sequential(seed);
    for (std::uint64_t n = 0; n < 50; ++n) {
      EXPECT_EQ(Rng::nth(seed, n), sequential.next_u64())
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Stats, RunningStatsMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingleSampleIsZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  std::vector<double> c{-1, -2, -3, -4};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  std::vector<double> a{1, 1, 1};
  std::vector<double> b{1, 2, 3};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW((void)pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Stats, ArgmaxAbs) {
  EXPECT_EQ(argmax_abs({1.0, -5.0, 3.0}), 1u);
  EXPECT_EQ(argmax_abs({}), 0u);
}

TEST(Stats, WelchTSeparatesDistinctMeans) {
  RunningStats g0, g1;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    g0.add(rng.next_gaussian());
    g1.add(rng.next_gaussian() + 1.0);
  }
  EXPECT_LT(welch_t(g0, g1), -5.0);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/emask_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a", "b"});
    csv.write_row({1.5, 2.0});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

TEST(Csv, CreatesMissingOutputDirectory) {
  // The writer owns directory creation: pointing it into a directory that
  // does not exist yet must succeed, not silently truncate or throw.
  const std::string dir = ::testing::TempDir() + "/emask_csv_mkdir/a/b";
  const std::string path = dir + "/out.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a"});
    csv.write_row({1.0});
    csv.flush();
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all(::testing::TempDir() + "/emask_csv_mkdir");
}

TEST(Csv, ThrowsOnUnopenablePath) {
  // /dev/null is a file, so a path *through* it can never be created —
  // the error must name the path instead of deferring to a later flush.
  EXPECT_THROW(CsvWriter("/dev/null/sub/x.csv"), std::runtime_error);
}

TEST(Fsio, OpenForWriteCreatesNestedDirectories) {
  const std::string root = ::testing::TempDir() + "/emask_fsio_test";
  const std::string path = root + "/x/y/z.txt";
  {
    std::ofstream out = open_for_write(path);
    out << "hello";
    close_or_throw(out, path);
  }
  EXPECT_EQ(read_text_file(path), "hello");
  std::filesystem::remove_all(root);
}

TEST(Fsio, OpenForWriteThrowsWithPathInMessage) {
  try {
    (void)open_for_write("/dev/null/sub/file.txt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/null/sub"),
              std::string::npos);
  }
}

TEST(Fsio, CloseOrThrowReportsWriteFailure) {
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "no /dev/full on this platform";
  std::ofstream out("/dev/full");
  out << "spill";
  EXPECT_THROW(close_or_throw(out, "/dev/full"), std::runtime_error);
}

TEST(Csv, ParseRoundTripsWriterOutput) {
  const CsvTable t = parse_csv("a,b\n1.5,2\n3,4\n");
  ASSERT_EQ(t.columns.size(), 2u);
  EXPECT_EQ(t.columns[0], "a");
  EXPECT_EQ(t.column("b"), 1u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "1.5");
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(Csv, ParseHandlesQuotedCellsAndCrlf) {
  const CsvTable t =
      parse_csv("id,note\r\n\"a,b\",\"say \"\"hi\"\"\"\r\n1,\"multi\nline\"");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "a,b");
  EXPECT_EQ(t.rows[0][1], "say \"hi\"");
  EXPECT_EQ(t.rows[1][1], "multi\nline");
}

TEST(Csv, ParseRejectsRaggedRows) {
  try {
    (void)parse_csv("a,b\n1\n");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos);
  }
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"open"), CsvError);
}

TEST(Csv, ColumnLookupNamesTheMissingColumn) {
  const CsvTable t = parse_csv("x,y\n1,2\n");
  try {
    (void)t.column("z");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find("'z'"), std::string::npos);
  }
}

TEST(Csv, EscapeFollowsRfc4180) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, StringRowsAreEscaped) {
  const std::string path = ::testing::TempDir() + "/emask_csv_str_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"id", "note"});
    csv.write_row({std::string("a,b"), std::string("x")});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "id,note");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",x");
  std::remove(path.c_str());
}

TEST(Csv, FlushThrowsOnWriteFailure) {
  // /dev/full accepts the open but fails every write with ENOSPC.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "no /dev/full on this platform";
  CsvWriter csv("/dev/full");
  csv.write_header({"a"});
  EXPECT_THROW(csv.flush(), std::runtime_error);
}

TEST(ArgParser, ParsesOptionsAndPositionals) {
  std::string pos;
  std::string name = "default";
  std::size_t count = 0;
  std::uint64_t key = 0;
  double sigma = 0.0;
  bool on = false;
  ArgParser parser("t", "FILE [options]");
  parser.positional("FILE", &pos, true, "input");
  parser.opt_string("name", &name, "S", "a string");
  parser.opt_size("count", &count, "a count");
  parser.opt_hex("key", &key, "a key");
  parser.opt_double("sigma", &sigma, "noise");
  parser.flag("on", &on, "a switch");
  const char* argv[] = {"t",          "--name=x", "--count=7", "in.txt",
                        "--key=0xAB", "--sigma=1.5", "--on"};
  EXPECT_TRUE(parser.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(pos, "in.txt");
  EXPECT_EQ(name, "x");
  EXPECT_EQ(count, 7u);
  EXPECT_EQ(key, 0xABu);
  EXPECT_DOUBLE_EQ(sigma, 1.5);
  EXPECT_TRUE(on);
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser parser("t", "");
  const char* argv[] = {"t", "--bogus=1"};
  EXPECT_THROW((void)parser.parse(2, const_cast<char**>(argv)), ArgError);
}

TEST(ArgParser, RejectsMissingRequiredPositional) {
  std::string pos;
  ArgParser parser("t", "FILE");
  parser.positional("FILE", &pos, true, "input");
  const char* argv[] = {"t"};
  EXPECT_THROW((void)parser.parse(1, const_cast<char**>(argv)), ArgError);
}

TEST(ArgParser, RejectsValueOutsideChoices) {
  std::string mode = "a";
  ArgParser parser("t", "");
  parser.opt_choice("mode", &mode, {"a", "b"}, "pick one");
  const char* argv[] = {"t", "--mode=c"};
  EXPECT_THROW((void)parser.parse(2, const_cast<char**>(argv)), ArgError);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser("t", "");
  const char* argv[] = {"t", "--help"};
  EXPECT_FALSE(parser.parse(2, const_cast<char**>(argv)));
}

TEST(ArgParser, StrictScalarParsing) {
  EXPECT_EQ(ArgParser::parse_int("-42", "x"), -42);
  EXPECT_EQ(ArgParser::parse_u64("18446744073709551615", "x"),
            0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(ArgParser::parse_hex("0xDEAD", "x"), 0xDEADu);
  EXPECT_EQ(ArgParser::parse_hex("beef", "x"), 0xBEEFu);
  EXPECT_DOUBLE_EQ(ArgParser::parse_double("2.5e-3", "x"), 2.5e-3);
  EXPECT_THROW((void)ArgParser::parse_int("12abc", "x"), ArgError);
  EXPECT_THROW((void)ArgParser::parse_int("", "x"), ArgError);
  EXPECT_THROW((void)ArgParser::parse_u64("-1", "x"), ArgError);
  EXPECT_THROW((void)ArgParser::parse_hex("0xZZ", "x"), ArgError);
  EXPECT_THROW((void)ArgParser::parse_double("1.5garbage", "x"), ArgError);
}

TEST(Ini, ParsesSectionsKeysAndComments) {
  const IniFile ini = IniFile::parse(
      "# leading comment\n"
      "[alpha]\n"
      "key = value  # trailing comment\n"
      "quoted = \" spaced # kept \"\n"
      "; another comment\n"
      "[beta]\n"
      "list = a, b , c\n");
  ASSERT_EQ(ini.sections().size(), 2u);
  EXPECT_EQ(*ini.find("alpha", "key"), "value");
  EXPECT_EQ(*ini.find("alpha", "quoted"), " spaced # kept ");
  EXPECT_EQ(ini.find("alpha", "absent"), nullptr);
  EXPECT_EQ(ini.get_or("beta", "missing", "fb"), "fb");
  const auto items = IniFile::split_list(*ini.find("beta", "list"));
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[1], "b");
  EXPECT_EQ(items[2], "c");
}

TEST(Ini, SplitListPreservesEmptyItems) {
  const auto items = IniFile::split_list("a,,b");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[1], "");
}

TEST(Ini, KeyOutsideSectionIsError) {
  EXPECT_THROW((void)IniFile::parse("key = 1\n"), IniError);
}

TEST(Ini, DuplicateSectionIsError) {
  EXPECT_THROW((void)IniFile::parse("[a]\nx = 1\n[a]\ny = 2\n"), IniError);
}

TEST(Ini, DuplicateKeyIsError) {
  EXPECT_THROW((void)IniFile::parse("[a]\nx = 1\nx = 2\n"), IniError);
}

TEST(Ini, MalformedLineIsErrorWithLineNumber) {
  try {
    (void)IniFile::parse("[a]\nnot an assignment\n");
    FAIL() << "expected IniError";
  } catch (const IniError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Json, EmitsDeterministicDocument) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name");
  json.value("say \"hi\"\n");
  json.key("count");
  json.value(std::uint64_t{3});
  json.key("list");
  json.begin_array();
  json.value(1.5);
  json.value(true);
  json.end_array();
  json.end_object();
  json.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"say \\\"hi\\\"\\n\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("true"), std::string::npos);
}

TEST(Json, FormatDoubleRoundTrips) {
  const double values[] = {0.0, 1.0 / 3.0, 22.738847, 1e-300, -2.5};
  for (const double v : values) {
    EXPECT_EQ(std::stod(JsonWriter::format_double(v)), v);
  }
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  // JSON has no NaN/Infinity literal; emitting format_double's "nan"/"inf"
  // would make the document unparsable.
  const double non_finite[] = {std::nan(""),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()};
  for (const double v : non_finite) {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_object();
    json.key("metric");
    json.value(v);
    json.end_object();
    json.finish();
    EXPECT_EQ(out.str(), "{\n  \"metric\": null\n}\n") << "value " << v;
    EXPECT_NO_THROW((void)parse_json(out.str()));
  }
}

TEST(Json, ExplicitNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.null();
  json.end_array();
  json.finish();
  EXPECT_EQ(out.str(), "[\n  null\n]\n");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name");
  json.value("say \"hi\"\n");
  json.key("big");
  json.value(std::uint64_t{18446744073709551615ull});
  json.key("third");
  json.value(1.0 / 3.0);
  json.key("neg");
  json.value(-7);
  json.key("flags");
  json.begin_array();
  json.value(true);
  json.value(false);
  json.null();
  json.end_array();
  json.end_object();
  json.finish();

  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("name").as_string(), "say \"hi\"\n");
  // Raw tokens survive: a u64 above 2^53 loses nothing.
  EXPECT_EQ(doc.at("big").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("big").text, "18446744073709551615");
  EXPECT_DOUBLE_EQ(doc.at("third").as_double(), 1.0 / 3.0);
  EXPECT_EQ(doc.at("third").text, JsonWriter::format_double(1.0 / 3.0));
  EXPECT_EQ(doc.at("neg").as_int(), -7);
  ASSERT_EQ(doc.at("flags").array.size(), 3u);
  EXPECT_TRUE(doc.at("flags").array[0].as_bool());
  EXPECT_FALSE(doc.at("flags").array[1].as_bool());
  EXPECT_TRUE(doc.at("flags").array[2].is_null());
  // Members preserve insertion order.
  EXPECT_EQ(doc.members.front().first, "name");
  EXPECT_EQ(doc.members.back().first, "flags");
}

TEST(Json, ParserDecodesEscapes) {
  const JsonValue doc = parse_json("\"a\\u00e9\\t\\\\b\\u0041\"");
  EXPECT_EQ(doc.as_string(), "a\xC3\xA9\t\\bA");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), JsonError);
  EXPECT_THROW((void)parse_json("{\"a\": 1,}"), JsonError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)parse_json("[1, 2] trailing"), JsonError);
  EXPECT_THROW((void)parse_json("01"), JsonError);
  EXPECT_THROW((void)parse_json("nan"), JsonError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonError);
}

TEST(Json, AccessorsRejectTypeMismatch) {
  const JsonValue doc = parse_json("{\"s\": \"x\", \"d\": 1.5, \"n\": -2}");
  EXPECT_THROW((void)doc.at("s").as_u64(), JsonError);
  EXPECT_THROW((void)doc.at("d").as_u64(), JsonError);   // not an integer
  EXPECT_THROW((void)doc.at("n").as_u64(), JsonError);   // negative
  EXPECT_THROW((void)doc.at("missing"), JsonError);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.at("n").as_int(), -2);
}

TEST(ArgParser, PositionalRestCollectsTail) {
  std::string cmd;
  std::vector<std::string> rest;
  std::string out;
  ArgParser parser("t", "CMD DIR... --out=X");
  parser.positional("CMD", &cmd, true, "subcommand");
  parser.positional_rest("DIR", &rest, "input directories");
  parser.opt_string("out", &out, "X", "output");
  const char* argv[] = {"t", "merge", "a", "b", "c", "--out=m"};
  ASSERT_TRUE(parser.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(cmd, "merge");
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], "a");
  EXPECT_EQ(rest[2], "c");
  EXPECT_EQ(out, "m");
}

}  // namespace
}  // namespace emask::util
