#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/bitops.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace emask::util {
namespace {

TEST(Bitops, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0);
  EXPECT_EQ(hamming_distance(0xFFFFFFFFu, 0), 32);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming_distance(0x80000000u, 0), 1);
}

TEST(Bitops, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b100, 2), 1u);
  EXPECT_EQ(bit_of(0b100, 1), 0u);
  EXPECT_EQ(with_bit(0, 5, 1), 32u);
  EXPECT_EQ(with_bit(0xFFFFFFFFu, 0, 0), 0xFFFFFFFEu);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFFF, 16), 0xFFFFFFFFu);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 0x7FFFu);
  EXPECT_EQ(sign_extend(0x80, 8), 0xFFFFFF80u);
  EXPECT_EQ(sign_extend(0x7F, 8), 0x7Fu);
}

TEST(Bitops, PackUnpackRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.next_u64();
    EXPECT_EQ(pack_block_msb_first(unpack_block_msb_first(x)), x);
  }
}

TEST(Bitops, UnpackIsMsbFirst) {
  const auto bits = unpack_block_msb_first(1ull << 63);
  EXPECT_EQ(bits[0], 1u);
  for (int i = 1; i < 64; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0u);
}

TEST(Bitops, PackRejectsWrongSize) {
  EXPECT_THROW((void)pack_block_msb_first(std::vector<std::uint32_t>(63)),
               std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NthGivesRandomAccessIntoTheStream) {
  // Rng::nth(seed, n) must equal the (n+1)-th sequential draw — this is
  // what lets parallel trace capture reproduce a serial plaintext stream.
  for (const std::uint64_t seed : {0ull, 42ull, 0xD9Aull, ~0ull}) {
    Rng sequential(seed);
    for (std::uint64_t n = 0; n < 50; ++n) {
      EXPECT_EQ(Rng::nth(seed, n), sequential.next_u64())
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Stats, RunningStatsMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingleSampleIsZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  std::vector<double> c{-1, -2, -3, -4};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  std::vector<double> a{1, 1, 1};
  std::vector<double> b{1, 2, 3};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW((void)pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Stats, ArgmaxAbs) {
  EXPECT_EQ(argmax_abs({1.0, -5.0, 3.0}), 1u);
  EXPECT_EQ(argmax_abs({}), 0u);
}

TEST(Stats, WelchTSeparatesDistinctMeans) {
  RunningStats g0, g1;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    g0.add(rng.next_gaussian());
    g1.add(rng.next_gaussian() + 1.0);
  }
  EXPECT_LT(welch_t(g0, g1), -5.0);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/emask_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a", "b"});
    csv.write_row({1.5, 2.0});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace emask::util
