// SHA-1: golden known-answer vectors and the simulated assembly
// implementation under every masking policy.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "compiler/masking.hpp"
#include "core/masking_pipeline.hpp"
#include "sha/asm_generator.hpp"
#include "sha/sha1.hpp"
#include "sim/interpreter.hpp"
#include "util/rng.hpp"

namespace emask::sha {
namespace {

TEST(Sha1Golden, KnownAnswers) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Golden, MillionAs) {
  EXPECT_EQ(sha1_hex(std::string(1000000, 'a')),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Golden, CompressMatchesFullHashOnOneBlock) {
  // "abc" padded fits one block; compress must agree with sha1().
  std::array<std::uint32_t, 16> block{};
  block[0] = 0x61626380u;  // "abc" + 0x80
  block[15] = 24;          // bit length
  Sha1State st = sha1_init();
  sha1_compress(st, block);
  EXPECT_EQ(st.h[0], 0xA9993E36u);
  EXPECT_EQ(st.h[4], 0x9CD0D89Du);
}

std::array<std::uint32_t, 16> random_block(util::Rng& rng) {
  std::array<std::uint32_t, 16> block;
  for (auto& w : block) w = rng.next_u32();
  return block;
}

TEST(Sha1OnPipeline, MatchesGoldenCompression) {
  util::Rng rng(0x5A1);
  const auto block = random_block(rng);
  const auto program = assembler::assemble(generate_sha1_asm(block));
  sim::Pipeline pipeline(program);
  pipeline.run();
  Sha1State golden = sha1_init();
  sha1_compress(golden, block);
  EXPECT_EQ(read_digest(pipeline.memory(), program), golden.h);
}

class ShaPolicyTest : public ::testing::TestWithParam<compiler::Policy> {};

TEST_P(ShaPolicyTest, CorrectUnderEveryPolicy) {
  util::Rng rng(0x5A2 + static_cast<std::uint64_t>(GetParam()));
  const auto block = random_block(rng);
  const auto pipeline = core::MaskingPipeline::from_source(
      generate_sha1_asm(block), GetParam());
  const auto run = pipeline.run_raw();
  EXPECT_TRUE(run.sim.halted);
  sim::Pipeline machine(pipeline.program());
  machine.run();
  Sha1State golden = sha1_init();
  sha1_compress(golden, block);
  EXPECT_EQ(read_digest(machine.memory(), pipeline.program()), golden.h);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ShaPolicyTest,
                         ::testing::Values(compiler::Policy::kOriginal,
                                           compiler::Policy::kSelective,
                                           compiler::Policy::kNaiveLoadStore,
                                           compiler::Policy::kAllSecure),
                         [](const auto& info) {
                           return std::string(
                               compiler::policy_name(info.param));
                         });

TEST(Sha1OnPipeline, SliceCoversEverythingWithoutDiagnostics) {
  util::Rng rng(0x5A3);
  const auto pipeline = core::MaskingPipeline::from_source(
      generate_sha1_asm(random_block(rng)), compiler::Policy::kSelective);
  for (const auto& d : pipeline.mask_result().slice.diagnostics) {
    ADD_FAILURE() << "diagnostic: " << d.message;
  }
  // The 80-round computation is secret-dependent nearly everywhere, so the
  // slice must secure the logic unit too (Ch/Maj use and/nor).
  bool secure_and = false, secure_nor = false;
  for (const auto& inst : pipeline.program().text) {
    secure_and |= inst.secure && inst.op == isa::Opcode::kAnd;
    secure_nor |= inst.secure && inst.op == isa::Opcode::kNor;
  }
  EXPECT_TRUE(secure_and) << "Ch/Maj must use the secure AND";
  EXPECT_TRUE(secure_nor) << "Ch must use the secure NOR";
}

TEST(Sha1OnPipeline, MaskingFlattensMessageDifferential) {
  util::Rng rng(0x5A4);
  const auto block1 = random_block(rng);
  auto block2 = block1;
  block2[3] ^= 1u;  // single-bit change in the secret block

  const auto masked = core::MaskingPipeline::from_source(
      generate_sha1_asm(block1), compiler::Policy::kSelective);
  assembler::Program image2 = masked.program();
  poke_message(image2, block2);
  const auto d = masked.run_raw().trace.difference(
      masked.run_image(image2).trace);
  // Everything up to the declassified digest store is flat.
  const auto body = d.slice(0, d.size() - 100);
  EXPECT_EQ(body.max_abs(), 0.0);

  const auto original = core::MaskingPipeline::from_source(
      generate_sha1_asm(block1), compiler::Policy::kOriginal);
  assembler::Program image2o = original.program();
  poke_message(image2o, block2);
  const auto d_orig = original.run_raw().trace.difference(
      original.run_image(image2o).trace);
  EXPECT_GT(d_orig.slice(0, d_orig.size() - 100).max_abs(), 0.0);
}

TEST(Sha1OnPipeline, InterpreterAgrees) {
  util::Rng rng(0x5A5);
  const auto block = random_block(rng);
  const auto program = assembler::assemble(generate_sha1_asm(block));
  sim::Interpreter interp(program);
  interp.run();
  Sha1State golden = sha1_init();
  sha1_compress(golden, block);
  EXPECT_EQ(read_digest(interp.memory(), program), golden.h);
}

}  // namespace
}  // namespace emask::sha
