// Cycle-accurate pipeline: ISA semantics, hazards, forwarding, timing.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "sim/interpreter.hpp"
#include "sim/pipeline.hpp"

namespace emask::sim {
namespace {

Pipeline run_program(const std::string& src) {
  static std::map<std::string, assembler::Program> cache;
  auto [it, inserted] = cache.try_emplace(src);
  if (inserted) it->second = assembler::assemble(src);
  Pipeline p(it->second);
  p.run();
  return p;
}

TEST(Pipeline, ArithmeticSemantics) {
  const Pipeline p = run_program(R"(
main:
  li $t0, 7
  li $t1, -3
  addu $t2, $t0, $t1
  subu $t3, $t0, $t1
  and  $t4, $t0, $t1
  or   $t5, $t0, $t1
  xor  $t6, $t0, $t1
  nor  $t7, $t0, $t1
  slt  $s0, $t1, $t0
  sltu $s1, $t1, $t0
  halt
)");
  EXPECT_EQ(p.reg(10), 4u);
  EXPECT_EQ(p.reg(11), 10u);
  EXPECT_EQ(p.reg(12), 7u & 0xFFFFFFFDu);
  EXPECT_EQ(p.reg(13), 0xFFFFFFFFu);
  EXPECT_EQ(p.reg(14), 0xFFFFFFFAu);
  EXPECT_EQ(p.reg(15), 0u);
  EXPECT_EQ(p.reg(16), 1u);   // -3 < 7 signed
  EXPECT_EQ(p.reg(17), 0u);   // 0xFFFFFFFD > 7 unsigned
}

TEST(Pipeline, ShiftSemantics) {
  const Pipeline p = run_program(R"(
main:
  li $t0, 0x80000000
  li $t1, 4
  srl  $t2, $t0, 4
  sra  $t3, $t0, 4
  sll  $t4, $t1, 2
  srlv $t5, $t0, $t1
  srav $t6, $t0, $t1
  sllv $t7, $t1, $t1
  halt
)");
  EXPECT_EQ(p.reg(10), 0x08000000u);
  EXPECT_EQ(p.reg(11), 0xF8000000u);
  EXPECT_EQ(p.reg(12), 16u);
  EXPECT_EQ(p.reg(13), 0x08000000u);
  EXPECT_EQ(p.reg(14), 0xF8000000u);
  EXPECT_EQ(p.reg(15), 64u);
}

TEST(Pipeline, ImmediateLogicalZeroExtends) {
  const Pipeline p = run_program(R"(
main:
  li   $t0, -1
  andi $t1, $t0, 0xff00
  ori  $t2, $zero, 0x8000
  xori $t3, $t0, 0xffff
  sltiu $t4, $t0, 10
  slti  $t5, $t0, 10
  halt
)");
  EXPECT_EQ(p.reg(9), 0xFF00u);
  EXPECT_EQ(p.reg(10), 0x8000u);
  EXPECT_EQ(p.reg(11), 0xFFFF0000u);
  EXPECT_EQ(p.reg(12), 0u);  // 0xFFFFFFFF not < 10 unsigned
  EXPECT_EQ(p.reg(13), 1u);  // -1 < 10 signed
}

TEST(Pipeline, ZeroRegisterIsImmutable) {
  const Pipeline p = run_program(R"(
main:
  li $zero, 55
  addu $t0, $zero, $zero
  halt
)");
  EXPECT_EQ(p.reg(0), 0u);
  EXPECT_EQ(p.reg(8), 0u);
}

TEST(Pipeline, ForwardingBackToBackDependencies) {
  const Pipeline p = run_program(R"(
main:
  li $t0, 1
  addu $t1, $t0, $t0
  addu $t2, $t1, $t1
  addu $t3, $t2, $t1
  halt
)");
  EXPECT_EQ(p.reg(9), 2u);
  EXPECT_EQ(p.reg(10), 4u);
  EXPECT_EQ(p.reg(11), 6u);
}

TEST(Pipeline, MemoryRoundTripAndLoadUse) {
  const Pipeline p = run_program(R"(
.data
buf: .space 16
.text
main:
  la $t0, buf
  li $t1, 1234
  sw $t1, 4($t0)
  lw $t2, 4($t0)
  addu $t3, $t2, $t2
  halt
)");
  EXPECT_EQ(p.reg(10), 1234u);
  EXPECT_EQ(p.reg(11), 2468u);
  EXPECT_EQ(p.memory().load_word(assembler::kDataBase + 4), 1234u);
}

TEST(Pipeline, LoadUseInterlockCostsOneCycle) {
  // Same instruction count; the dependent version takes exactly one more
  // cycle (the load-use bubble).
  const std::string dependent = R"(
.data
buf: .word 5
.text
main:
  la $t0, buf
  lw $t1, 0($t0)
  addu $t2, $t1, $t1
  halt
)";
  const std::string independent = R"(
.data
buf: .word 5
.text
main:
  la $t0, buf
  lw $t1, 0($t0)
  addu $t2, $t0, $t0
  halt
)";
  const Pipeline a = run_program(dependent);
  const Pipeline b = run_program(independent);
  EXPECT_EQ(a.result().cycles, b.result().cycles + 1);
  EXPECT_EQ(a.reg(10), 10u);
}

TEST(Pipeline, StraightLineTimingIsDepthPlusInstructions) {
  // k independent instructions retire in k + 4 cycles on a 5-stage pipe.
  const Pipeline p = run_program(R"(
main:
  li $t0, 1
  li $t1, 2
  li $t2, 3
  li $t3, 4
  li $t4, 5
  halt
)");
  EXPECT_EQ(p.result().cycles, 6u + 4u);
  EXPECT_EQ(p.result().instructions, 6u);
}

TEST(Pipeline, TakenBranchCostsTwoCycles) {
  // Branch resolved in EX: 2 squashed slots on taken, 0 on fall-through.
  const std::string taken = R"(
main:
  li $t0, 1
  beq $t0, $t0, skip
  nop
  nop
skip:
  halt
)";
  const std::string not_taken = R"(
main:
  li $t0, 1
  bne $t0, $t0, skip
  nop
  nop
skip:
  halt
)";
  // Taken: li, beq, halt retire (3); not taken: 5 instructions retire.
  const Pipeline a = run_program(taken);
  const Pipeline b = run_program(not_taken);
  EXPECT_EQ(a.result().instructions, 3u);
  EXPECT_EQ(b.result().instructions, 5u);
  // cycles: taken = 3 + 4 + 2 (flush) = 9; not taken = 5 + 4 = 9.
  EXPECT_EQ(a.result().cycles, 9u);
  EXPECT_EQ(b.result().cycles, 9u);
}

TEST(Pipeline, BranchVariants) {
  const Pipeline p = run_program(R"(
main:
  li $t0, -5
  li $t1, 0
  li $t7, 0
  bltz $t0, a
  halt
a:
  addiu $t7, $t7, 1
  bgez $t1, b
  halt
b:
  addiu $t7, $t7, 1
  blez $t1, c
  halt
c:
  addiu $t7, $t7, 1
  bgtz $t0, bad
  addiu $t7, $t7, 1
  halt
bad:
  li $t7, 99
  halt
)");
  EXPECT_EQ(p.reg(15), 4u);
}

TEST(Pipeline, LoopAccumulates) {
  const Pipeline p = run_program(R"(
main:
  li $t0, 0
  li $t1, 0
  li $t2, 10
loop:
  addu $t1, $t1, $t0
  addiu $t0, $t0, 1
  bne $t0, $t2, loop
  halt
)");
  EXPECT_EQ(p.reg(9), 45u);
}

TEST(Pipeline, JalAndJrImplementCalls) {
  const Pipeline p = run_program(R"(
main:
  li $a0, 20
  jal double
  move $s0, $v0
  jal double
  move $s1, $v0
  halt
double:
  addu $v0, $a0, $a0
  move $a0, $v0
  jr $ra
)");
  EXPECT_EQ(p.reg(16), 40u);
  EXPECT_EQ(p.reg(17), 80u);
}

TEST(Pipeline, RunsOffTextEndThrows) {
  assembler::Program prog = assembler::assemble("main:\n  nop\n  nop\n");
  Pipeline p(prog);
  EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(Pipeline, UnalignedAccessThrows) {
  assembler::Program prog = assembler::assemble(R"(
.data
b: .word 1
.text
main:
  la $t0, b
  lw $t1, 2($t0)
  halt
)");
  Pipeline p(prog);
  EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(Pipeline, OutOfRangeAccessThrows) {
  assembler::Program prog = assembler::assemble(R"(
main:
  lw $t1, 0($zero)
  halt
)");
  Pipeline p(prog);
  EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(Pipeline, CycleLimitEnforced) {
  assembler::Program prog = assembler::assemble("main:\n  b main\n  halt\n");
  SimConfig cfg;
  cfg.max_cycles = 1000;
  Pipeline p(prog, cfg);
  EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(Pipeline, EmptyProgramRejected) {
  assembler::Program prog;  // no instructions
  EXPECT_THROW(Pipeline{prog}, std::invalid_argument);
}

// ---- Functional interpreter edge cases ----

TEST(Interpreter, BudgetExceededThrows) {
  assembler::Program prog = assembler::assemble("main:\n  b main\n  halt\n");
  Interpreter interp(prog);
  EXPECT_THROW(interp.run(/*max_instructions=*/100), std::runtime_error);
}

TEST(Interpreter, ProgramCompletingOnTheBudgetBoundarySucceeds) {
  // Three productive instructions + halt.  A budget of exactly 3 must not
  // throw: the budget caps productive work, and the machine's very next
  // instruction is the terminating halt.
  assembler::Program prog =
      assembler::assemble("main:\n  nop\n  nop\n  nop\n  halt\n");
  {
    Interpreter interp(prog);
    interp.run(/*max_instructions=*/3);
    EXPECT_TRUE(interp.halted());
    EXPECT_EQ(interp.instructions(), 4u);  // halt itself still retires
  }
  {
    // One short of the boundary: a genuine budget violation.
    Interpreter interp(prog);
    EXPECT_THROW(interp.run(/*max_instructions=*/2), std::runtime_error);
  }
}

TEST(Pipeline, ProgramCompletingOnTheCycleBudgetBoundarySucceeds) {
  assembler::Program prog =
      assembler::assemble("main:\n  nop\n  nop\n  nop\n  halt\n");
  const std::uint64_t total = [&] {
    Pipeline p(prog);
    return p.run().cycles;
  }();
  {
    // Exactly enough cycles: must succeed.
    SimConfig cfg;
    cfg.max_cycles = total;
    Pipeline p(prog, cfg);
    EXPECT_EQ(p.run().cycles, total);
  }
  {
    // The halt is already in flight when the limit hits: the pipeline is
    // allowed to drain (same grace the interpreter gives a pending halt).
    SimConfig cfg;
    cfg.max_cycles = total - 1;
    Pipeline p(prog, cfg);
    EXPECT_EQ(p.run().cycles, total);
  }
  {
    // Far below: a genuine runaway.
    SimConfig cfg;
    cfg.max_cycles = 2;
    Pipeline p(prog, cfg);
    EXPECT_THROW(p.run(), std::runtime_error);
  }
}

TEST(Interpreter, PcOffEndThrows) {
  assembler::Program prog = assembler::assemble("main:\n  nop\n  nop\n");
  Interpreter interp(prog);
  EXPECT_THROW(interp.run(), std::runtime_error);
}

TEST(Interpreter, EmptyProgramRejected) {
  assembler::Program prog;
  EXPECT_THROW(Interpreter{prog}, std::invalid_argument);
}

TEST(Interpreter, StepAfterHaltReturnsFalse) {
  assembler::Program prog = assembler::assemble("main:\n  halt\n");
  Interpreter interp(prog);
  interp.run();
  EXPECT_TRUE(interp.halted());
  EXPECT_FALSE(interp.step());
  EXPECT_EQ(interp.instructions(), 1u);
}

// ---- Optional data cache (timing model) ----

TEST(Cache, DirectMappedSemantics) {
  CacheConfig cfg;
  cfg.size_bytes = 256;
  cfg.line_bytes = 32;
  DirectMappedCache cache(cfg);
  EXPECT_FALSE(cache.access(0x1000));       // cold miss
  EXPECT_TRUE(cache.access(0x1000));        // hit
  EXPECT_TRUE(cache.access(0x101C));        // same 32B line
  EXPECT_FALSE(cache.access(0x1020));       // next line
  EXPECT_FALSE(cache.access(0x1100));       // conflicts with 0x1000 (256B)
  EXPECT_FALSE(cache.access(0x1000));       // evicted
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(Cache, RejectsNonPowerOfTwoGeometry) {
  CacheConfig bad;
  bad.size_bytes = 100;
  EXPECT_THROW(DirectMappedCache{bad}, std::invalid_argument);
  bad.size_bytes = 128;
  bad.line_bytes = 24;
  EXPECT_THROW(DirectMappedCache{bad}, std::invalid_argument);
}

TEST(Cache, MissPenaltyStallsPipeline) {
  const std::string src = R"(
.data
a: .word 1
b: .space 1024
.text
main:
  la $t0, a
  lw $t1, 0($t0)
  lw $t2, 0($t0)
  halt
)";
  assembler::Program prog = assembler::assemble(src);
  SimConfig no_cache;
  Pipeline p0(prog, no_cache);
  const std::uint64_t base = p0.run().cycles;

  SimConfig with_cache;
  CacheConfig cache;
  cache.size_bytes = 256;
  cache.line_bytes = 32;
  cache.miss_penalty = 10;
  with_cache.dcache = cache;
  Pipeline p1(prog, with_cache);
  const SimResult r = p1.run();
  // One cold miss (second access hits the same line): exactly +10 cycles.
  EXPECT_EQ(r.cycles, base + 10);
  EXPECT_EQ(p1.dcache()->misses(), 1u);
  EXPECT_EQ(p1.dcache()->hits(), 1u);
  // Architectural results unaffected.
  EXPECT_EQ(p1.reg(9), 1u);
  EXPECT_EQ(p1.reg(10), 1u);
}

// ---- Activity reporting (what the energy model consumes) ----

TEST(PipelineActivity, MemActivityCarriesAddressAndData) {
  assembler::Program prog = assembler::assemble(R"(
.data
buf: .space 8
.text
main:
  la $t0, buf
  li $t1, 0xab
  sw $t1, 4($t0)
  lw $t2, 4($t0)
  halt
)");
  Pipeline p(prog);
  bool saw_store = false, saw_load = false;
  energy::CycleActivity a;
  while (p.step(a)) {
    if (a.mem.write) {
      saw_store = true;
      EXPECT_EQ(a.mem.address, assembler::kDataBase + 4);
      EXPECT_EQ(a.mem.data, 0xABu);
    }
    if (a.mem.read) {
      saw_load = true;
      EXPECT_EQ(a.mem.data, 0xABu);
    }
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_load);
}

TEST(PipelineActivity, SecureFlagsPropagate) {
  assembler::Program prog = assembler::assemble(R"(
.data
buf: .word 3
.text
main:
  la $t0, buf
  slw $t1, 0($t0)
  sxor $t2, $t1, $t1
  halt
)");
  Pipeline p(prog);
  bool secure_mem = false, secure_xor = false, secure_wb = false;
  energy::CycleActivity a;
  while (p.step(a)) {
    if (a.mem.read && a.mem.secure) secure_mem = true;
    if (a.ex.valid && a.ex.unit == isa::FuncUnit::kXorUnit && a.ex.secure) {
      secure_xor = true;
    }
    if (a.wb_secure) secure_wb = true;
  }
  EXPECT_TRUE(secure_mem);
  EXPECT_TRUE(secure_xor);
  EXPECT_TRUE(secure_wb);
}

TEST(PipelineActivity, OperandIsolationGatesForwardedReads) {
  // addu $t2,$t1,$t1: $t1 is produced by the immediately preceding li, so
  // both read ports are gated and rf_reads is 0 for that decode.
  assembler::Program prog = assembler::assemble(R"(
main:
  li $t1, 5
  addu $t2, $t1, $t1
  halt
)");
  Pipeline p(prog);
  std::vector<int> reads;
  energy::CycleActivity a;
  while (p.step(a)) {
    if (a.decode) reads.push_back(a.rf_reads);
  }
  // decodes: li (0 ports), addu (2 ports, both forwarded -> 0), halt (0).
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[1], 0);
}

TEST(PipelineActivity, BubblesDoNotWriteLatches) {
  assembler::Program prog = assembler::assemble(R"(
.data
b: .word 1
.text
main:
  la $t0, b
  lw $t1, 0($t0)
  addu $t2, $t1, $t1
  halt
)");
  Pipeline p(prog);
  energy::CycleActivity a;
  int idex_writes = 0;
  std::uint64_t cycles = 0;
  while (p.step(a)) {
    ++cycles;
    idex_writes += a.id_ex.wrote ? 1 : 0;
  }
  // 5 instructions decode exactly once each (the interlock repeats a decode
  // cycle but only one write survives).
  EXPECT_EQ(idex_writes, 5);
  EXPECT_GT(cycles, 5u);
}

// A looping store-heavy program for the snapshot tests: writes i to out[i]
// and accumulates the sum in $s0.
const char* kSnapshotProgram = R"(
.data
out: .space 256
.text
main:
  li $t0, 0
  li $s0, 0
  la $t1, out
loop:
  sll $t2, $t0, 2
  addu $t3, $t1, $t2
  sw $t0, 0($t3)
  addu $s0, $s0, $t0
  addiu $t0, $t0, 1
  li $k1, 64
  bne $t0, $k1, loop
  halt
)";

// The snapshot contract: capture mid-run, restore into a fresh Pipeline,
// and the continuation is bit-identical — same per-cycle activity, same
// final registers, memory, and counters.
TEST(PipelineSnapshot, RestoredContinuationIsBitIdentical) {
  assembler::Program prog = assembler::assemble(kSnapshotProgram);
  Pipeline original(prog);
  energy::CycleActivity a;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(original.step(a));
  const Snapshot snap = original.snapshot();
  EXPECT_EQ(snap.cycles, 100u);

  Pipeline restored(prog, snap);
  EXPECT_EQ(restored.cycles(), original.cycles());
  energy::CycleActivity ao;
  energy::CycleActivity ar;
  while (true) {
    const bool more_o = original.step(ao);
    const bool more_r = restored.step(ar);
    ASSERT_EQ(more_o, more_r);
    if (!more_o) break;
    // Per-cycle lockstep across every field the energy model consumes.
    EXPECT_EQ(ao.fetch, ar.fetch);
    EXPECT_EQ(ao.decode, ar.decode);
    EXPECT_EQ(ao.rf_reads, ar.rf_reads);
    EXPECT_EQ(ao.retired, ar.retired);
    EXPECT_EQ(ao.retire_pc, ar.retire_pc);
    EXPECT_EQ(ao.rf_write, ar.rf_write);
  }
  for (int r = 0; r < static_cast<int>(isa::kNumRegisters); ++r) {
    EXPECT_EQ(original.reg(static_cast<isa::Reg>(r)),
              restored.reg(static_cast<isa::Reg>(r)))
        << "register " << r;
  }
  const SimResult ro = original.result();
  const SimResult rr = restored.result();
  EXPECT_EQ(ro.cycles, rr.cycles);
  EXPECT_EQ(ro.instructions, rr.instructions);
  EXPECT_EQ(ro.stalls, rr.stalls);
  EXPECT_EQ(ro.flushes, rr.flushes);
  const assembler::DataSymbol* out = prog.find_symbol("out");
  ASSERT_NE(out, nullptr);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(original.memory().load_word(out->address + i * 4),
              restored.memory().load_word(out->address + i * 4));
  }
}

// Restoring against a different program is a caught mistake, not silent
// garbage.
TEST(PipelineSnapshot, RestoreRejectsMismatchedProgram) {
  assembler::Program prog = assembler::assemble(kSnapshotProgram);
  Pipeline p(prog);
  energy::CycleActivity a;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(p.step(a));
  const Snapshot snap = p.snapshot();
  assembler::Program other = assembler::assemble("main:\n  halt\n");
  EXPECT_THROW(Pipeline(other, snap), std::invalid_argument);
}

// Forked memory is copy-on-write at page granularity: a restored machine
// shares every page with the snapshot until it writes, and a write clones
// only the touched page.
TEST(PipelineSnapshot, MemoryForksCopyOnWrite) {
  assembler::Program prog = assembler::assemble(kSnapshotProgram);
  Pipeline p(prog);
  energy::CycleActivity a;
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(p.step(a));
  const Snapshot snap = p.snapshot();
  Pipeline forked(prog, snap);

  const std::uint32_t base = forked.memory().base();
  EXPECT_TRUE(forked.memory().shares_page_with(snap.memory, base));
  EXPECT_TRUE(forked.memory().shares_page_with(snap.memory, base + 8192));

  const std::uint32_t before = snap.memory.load_word(base);
  forked.memory().store_word(base, before + 1);
  // The written page is now private; an untouched page is still shared.
  EXPECT_FALSE(forked.memory().shares_page_with(snap.memory, base));
  EXPECT_TRUE(forked.memory().shares_page_with(snap.memory, base + 8192));
  // The snapshot's view is unchanged (the fork cloned, never mutated).
  EXPECT_EQ(snap.memory.load_word(base), before);
  EXPECT_EQ(forked.memory().load_word(base), before + 1);
}

}  // namespace
}  // namespace emask::sim
