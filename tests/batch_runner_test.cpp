// Parallel batch trace-capture engine: determinism contract, streaming,
// stats, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include "analysis/trace_io.hpp"
#include "core/batch_runner.hpp"
#include "util/rng.hpp"

namespace emask::core {
namespace {

constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
constexpr std::uint64_t kSeed = 0xBA7C4;
constexpr std::size_t kTraces = 8;
constexpr std::uint64_t kStop = 1500;  // short prefix keeps the test quick

const MaskingPipeline& device() {
  static const MaskingPipeline p =
      MaskingPipeline::des(compiler::Policy::kOriginal);
  return p;
}

BatchConfig config(std::size_t threads) {
  BatchConfig bc;
  bc.threads = threads;
  bc.stop_after_cycles = kStop;
  return bc;
}

void expect_identical(const analysis::TraceSet& a,
                      const analysis::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.inputs, b.inputs);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise: vector<double> operator== compares every sample exactly.
    EXPECT_EQ(a.traces[i].samples(), b.traces[i].samples()) << "trace " << i;
  }
}

// The headline contract: N threads produce the same TraceSet as 1 thread,
// bit for bit — inputs, sample values, and ordering.
TEST(BatchRunner, ThreadCountDoesNotChangeTheTraceSet) {
  const InputGenerator gen = random_plaintexts(kKey, kSeed);
  BatchRunner serial(device(), config(1));
  const analysis::TraceSet one = serial.capture(kTraces, gen);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    BatchRunner parallel(device(), config(threads));
    const analysis::TraceSet many = parallel.capture(kTraces, gen);
    expect_identical(one, many);
  }
}

// ... and noisy capture stays deterministic too (noise is seeded per index,
// not from a stream threaded through the batch).
TEST(BatchRunner, NoisyCaptureIsThreadCountInvariant) {
  BatchConfig noisy = config(1);
  noisy.noise_sigma_pj = 1.0;
  noisy.noise_seed = 0x5EED;
  BatchRunner serial(device(), noisy);
  const analysis::TraceSet one =
      serial.capture(kTraces, random_plaintexts(kKey, kSeed));
  noisy.threads = 4;
  BatchRunner parallel(device(), noisy);
  const analysis::TraceSet many =
      parallel.capture(kTraces, random_plaintexts(kKey, kSeed));
  expect_identical(one, many);
}

// The generator stream matches the serial rng.next_u64() acquisition loops
// the benches used before BatchRunner existed.
TEST(BatchRunner, RandomPlaintextsReproduceTheSerialRngStream) {
  util::Rng rng(kSeed);
  const InputGenerator gen = random_plaintexts(kKey, kSeed);
  for (std::size_t i = 0; i < 32; ++i) {
    const BatchInput input = gen(i);
    EXPECT_EQ(input.key, kKey);
    EXPECT_EQ(input.plaintext, rng.next_u64()) << "index " << i;
  }
}

TEST(BatchRunner, MatchesDirectRunDes) {
  BatchRunner runner(device(), config(4));
  const analysis::TraceSet set =
      runner.capture(kTraces, random_plaintexts(kKey, kSeed));
  // Spot-check first and last against the single-encryption API.
  for (const std::size_t i : {std::size_t{0}, kTraces - 1}) {
    const EncryptionRun run =
        device().run_des(kKey, set.inputs[i], kStop);
    EXPECT_EQ(set.traces[i].samples(), run.trace.samples());
  }
}

TEST(BatchRunner, ExplicitInputListKeepsOrder) {
  std::vector<BatchInput> inputs;
  for (std::uint64_t i = 0; i < 5; ++i) inputs.push_back({kKey, 100 + i});
  BatchRunner runner(device(), config(3));
  const analysis::TraceSet set = runner.capture(inputs);
  ASSERT_EQ(set.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(set.inputs[i], inputs[i].plaintext);
  }
}

TEST(BatchRunner, CaptureEachEmitsInStrictIndexOrder) {
  BatchRunner runner(device(), config(4));
  std::size_t expected = 0;
  runner.capture_each(kTraces, random_plaintexts(kKey, kSeed),
                      [&](std::size_t i, const BatchInput&, EncryptionRun&) {
                        EXPECT_EQ(i, expected);
                        ++expected;
                      });
  EXPECT_EQ(expected, kTraces);
}

TEST(BatchRunner, StatsAggregateInSerialOrder) {
  BatchRunner serial(device(), config(1));
  (void)serial.capture(kTraces, random_plaintexts(kKey, kSeed));
  BatchRunner parallel(device(), config(4));
  (void)parallel.capture(kTraces, random_plaintexts(kKey, kSeed));
  const BatchStats& a = serial.stats();
  const BatchStats& b = parallel.stats();
  EXPECT_EQ(a.encryptions, kTraces);
  EXPECT_EQ(b.encryptions, kTraces);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  // Serial-order accumulation: even the floating-point sums agree exactly.
  EXPECT_EQ(a.total_energy_uj, b.total_energy_uj);
  EXPECT_EQ(a.breakdown.total(), b.breakdown.total());
  EXPECT_EQ(a.total_cycles, kTraces * kStop);
  EXPECT_GT(a.total_energy_uj, 0.0);
}

TEST(BatchRunner, StreamsToFileIdenticalToInMemoryCapture) {
  const std::string path = ::testing::TempDir() + "/batch.emts";
  BatchRunner runner(device(), config(4));
  const BatchStats file_stats = runner.capture_to_file(
      path, kTraces, random_plaintexts(kKey, kSeed));
  EXPECT_EQ(file_stats.encryptions, kTraces);
  const analysis::TraceSet from_file = analysis::load_trace_set(path);
  BatchRunner again(device(), config(1));
  const analysis::TraceSet in_memory =
      again.capture(kTraces, random_plaintexts(kKey, kSeed));
  ASSERT_EQ(from_file.size(), in_memory.size());
  EXPECT_EQ(from_file.inputs, in_memory.inputs);
  for (std::size_t i = 0; i < from_file.size(); ++i) {
    for (std::size_t j = 0; j < from_file.traces[i].size(); ++j) {
      // EMTS stores float32; compare at that precision.
      EXPECT_EQ(from_file.traces[i][j],
                static_cast<double>(static_cast<float>(in_memory.traces[i][j])));
    }
  }
  std::remove(path.c_str());
}

TEST(BatchRunner, EmptyBatchIsANoOp) {
  BatchRunner runner(device(), config(4));
  const analysis::TraceSet set =
      runner.capture(0, random_plaintexts(kKey, kSeed));
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(runner.stats().encryptions, 0u);
}

TEST(BatchRunner, WorkerExceptionPropagatesToCaller) {
  BatchRunner runner(device(), config(4));
  // Plaintext is irrelevant: a generator that throws models a failing
  // acquisition source.
  const InputGenerator poisoned = [](std::size_t i) -> BatchInput {
    if (i == 5) throw std::runtime_error("acquisition failed");
    return {kKey, i};
  };
  EXPECT_THROW((void)runner.capture(kTraces, poisoned), std::runtime_error);
}

TEST(BatchRunner, SinkExceptionStopsTheBatch) {
  BatchRunner runner(device(), config(4));
  EXPECT_THROW(
      runner.capture_each(kTraces, random_plaintexts(kKey, kSeed),
                          [](std::size_t i, const BatchInput&,
                             EncryptionRun&) {
                            if (i == 2) throw std::runtime_error("sink full");
                          }),
      std::runtime_error);
}

TEST(BatchRunner, EffectiveThreadsClampsToBatchSize) {
  BatchRunner runner(device(), config(8));
  EXPECT_EQ(runner.effective_threads(3), 3u);
  EXPECT_EQ(runner.effective_threads(100), 8u);
  EXPECT_GE(runner.effective_threads(1), 1u);
}

// --- Shared-prefix snapshot/fork batches -------------------------------

// A device whose program declares a fork marker (hoisted key schedule).
const MaskingPipeline& forkable_device() {
  static const MaskingPipeline p = [] {
    des::DesAsmOptions opts;
    opts.hoist_key_schedule = true;
    return MaskingPipeline::des(compiler::Policy::kOriginal,
                                energy::TechParams::smartcard_025um(), opts);
  }();
  return p;
}

BatchConfig full_config(std::size_t threads, SnapshotMode mode) {
  BatchConfig bc;
  bc.threads = threads;
  bc.snapshot = mode;  // full runs (stop = 0): the fork path is exercised
  return bc;
}

// The snapshot path obeys the same headline contract: any thread count,
// with or without forking, produces the identical TraceSet — including
// with per-index measurement noise on top.
TEST(BatchRunnerSnapshot, ForkingIsBitIdenticalAcrossThreadCounts) {
  const std::size_t kN = 6;
  const InputGenerator gen = random_plaintexts(kKey, kSeed);
  BatchRunner cold(forkable_device(), full_config(1, SnapshotMode::kOff));
  const analysis::TraceSet reference = cold.capture(kN, gen);
  EXPECT_EQ(cold.stats().snapshot_forks, 0u);
  EXPECT_EQ(cold.stats().cold_starts, kN);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchRunner forked(forkable_device(),
                       full_config(threads, SnapshotMode::kRequire));
    const analysis::TraceSet set = forked.capture(kN, gen);
    expect_identical(reference, set);
    EXPECT_EQ(forked.stats().snapshot_forks, kN) << threads << " threads";
    EXPECT_EQ(forked.stats().cold_starts, 0u);
    EXPECT_GT(forked.stats().snapshot_prefix_cycles, 0u);
  }
}

TEST(BatchRunnerSnapshot, NoisyForkedCaptureMatchesNoisyColdCapture) {
  const std::size_t kN = 4;
  BatchConfig cold_cfg = full_config(1, SnapshotMode::kOff);
  cold_cfg.noise_sigma_pj = 2.0;
  cold_cfg.noise_seed = 0x5EED;
  BatchRunner cold(forkable_device(), cold_cfg);
  const analysis::TraceSet reference =
      cold.capture(kN, random_plaintexts(kKey, kSeed));
  BatchConfig fork_cfg = cold_cfg;
  fork_cfg.threads = 8;
  fork_cfg.snapshot = SnapshotMode::kRequire;
  BatchRunner forked(forkable_device(), fork_cfg);
  const analysis::TraceSet set =
      forked.capture(kN, random_plaintexts(kKey, kSeed));
  expect_identical(reference, set);
}

// The snapshot is keyed to the batch's first input: other keys in the same
// batch cold-start (and still come out right).
TEST(BatchRunnerSnapshot, MixedKeysForkOnlyTheSnapshotKey) {
  std::vector<BatchInput> inputs = {{kKey, 1}, {kKey ^ 1, 2}, {kKey, 3}};
  BatchRunner runner(forkable_device(), full_config(2, SnapshotMode::kAuto));
  const analysis::TraceSet set = runner.capture(inputs);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(runner.stats().snapshot_forks, 2u);
  EXPECT_EQ(runner.stats().cold_starts, 1u);
  // The foreign-key trace matches its own cold single run.
  const EncryptionRun direct = forkable_device().run_des(kKey ^ 1, 2);
  EXPECT_EQ(set.traces[1].samples(), direct.trace.samples());
}

// A stop_after_cycles budget ending before the fork point silently falls
// back to cold starts — the trace is never longer than requested.
TEST(BatchRunnerSnapshot, StopBeforeForkPointFallsBackCold) {
  BatchConfig bc = full_config(2, SnapshotMode::kRequire);
  bc.stop_after_cycles = 100;  // well before the hoisted key schedule ends
  BatchRunner runner(forkable_device(), bc);
  const analysis::TraceSet set =
      runner.capture(3, random_plaintexts(kKey, kSeed));
  for (const auto& trace : set.traces) EXPECT_EQ(trace.size(), 100u);
  EXPECT_EQ(runner.stats().snapshot_forks, 0u);
  EXPECT_EQ(runner.stats().cold_starts, 3u);
}

// A custom run_function bypasses snapshotting cleanly under kAuto...
TEST(BatchRunnerSnapshot, RunFunctionBypassesSnapshotting) {
  BatchConfig bc = full_config(2, SnapshotMode::kAuto);
  bc.run_function = [](const MaskingPipeline& dev, const BatchInput& in) {
    return dev.run_des(in.key, in.plaintext);
  };
  BatchRunner runner(forkable_device(), bc);
  const analysis::TraceSet set =
      runner.capture(3, random_plaintexts(kKey, kSeed));
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(runner.stats().snapshot_forks, 0u);
  EXPECT_EQ(runner.stats().cold_starts, 3u);
  EXPECT_EQ(runner.stats().snapshot_prefix_cycles, 0u);
}

// ... and fails loudly under kRequire, as does a program with no marker.
TEST(BatchRunnerSnapshot, RequireFailsLoudlyWhenItCannotSnapshot) {
  BatchConfig with_fn = full_config(1, SnapshotMode::kRequire);
  with_fn.run_function = [](const MaskingPipeline& dev, const BatchInput& in) {
    return dev.run_des(in.key, in.plaintext);
  };
  BatchRunner bad_fn(forkable_device(), with_fn);
  EXPECT_THROW((void)bad_fn.capture(2, random_plaintexts(kKey, kSeed)),
               std::logic_error);

  BatchRunner no_marker(device(), full_config(1, SnapshotMode::kRequire));
  EXPECT_THROW((void)no_marker.capture(2, random_plaintexts(kKey, kSeed)),
               std::logic_error);
}

}  // namespace
}  // namespace emask::core
