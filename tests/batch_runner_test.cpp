// Parallel batch trace-capture engine: determinism contract, streaming,
// stats, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include "analysis/trace_io.hpp"
#include "core/batch_runner.hpp"
#include "util/rng.hpp"

namespace emask::core {
namespace {

constexpr std::uint64_t kKey = 0x133457799BBCDFF1ull;
constexpr std::uint64_t kSeed = 0xBA7C4;
constexpr std::size_t kTraces = 8;
constexpr std::uint64_t kStop = 1500;  // short prefix keeps the test quick

const MaskingPipeline& device() {
  static const MaskingPipeline p =
      MaskingPipeline::des(compiler::Policy::kOriginal);
  return p;
}

BatchConfig config(std::size_t threads) {
  BatchConfig bc;
  bc.threads = threads;
  bc.stop_after_cycles = kStop;
  return bc;
}

void expect_identical(const analysis::TraceSet& a,
                      const analysis::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.inputs, b.inputs);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise: vector<double> operator== compares every sample exactly.
    EXPECT_EQ(a.traces[i].samples(), b.traces[i].samples()) << "trace " << i;
  }
}

// The headline contract: N threads produce the same TraceSet as 1 thread,
// bit for bit — inputs, sample values, and ordering.
TEST(BatchRunner, ThreadCountDoesNotChangeTheTraceSet) {
  const InputGenerator gen = random_plaintexts(kKey, kSeed);
  BatchRunner serial(device(), config(1));
  const analysis::TraceSet one = serial.capture(kTraces, gen);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    BatchRunner parallel(device(), config(threads));
    const analysis::TraceSet many = parallel.capture(kTraces, gen);
    expect_identical(one, many);
  }
}

// ... and noisy capture stays deterministic too (noise is seeded per index,
// not from a stream threaded through the batch).
TEST(BatchRunner, NoisyCaptureIsThreadCountInvariant) {
  BatchConfig noisy = config(1);
  noisy.noise_sigma_pj = 1.0;
  noisy.noise_seed = 0x5EED;
  BatchRunner serial(device(), noisy);
  const analysis::TraceSet one =
      serial.capture(kTraces, random_plaintexts(kKey, kSeed));
  noisy.threads = 4;
  BatchRunner parallel(device(), noisy);
  const analysis::TraceSet many =
      parallel.capture(kTraces, random_plaintexts(kKey, kSeed));
  expect_identical(one, many);
}

// The generator stream matches the serial rng.next_u64() acquisition loops
// the benches used before BatchRunner existed.
TEST(BatchRunner, RandomPlaintextsReproduceTheSerialRngStream) {
  util::Rng rng(kSeed);
  const InputGenerator gen = random_plaintexts(kKey, kSeed);
  for (std::size_t i = 0; i < 32; ++i) {
    const BatchInput input = gen(i);
    EXPECT_EQ(input.key, kKey);
    EXPECT_EQ(input.plaintext, rng.next_u64()) << "index " << i;
  }
}

TEST(BatchRunner, MatchesDirectRunDes) {
  BatchRunner runner(device(), config(4));
  const analysis::TraceSet set =
      runner.capture(kTraces, random_plaintexts(kKey, kSeed));
  // Spot-check first and last against the single-encryption API.
  for (const std::size_t i : {std::size_t{0}, kTraces - 1}) {
    const EncryptionRun run =
        device().run_des(kKey, set.inputs[i], kStop);
    EXPECT_EQ(set.traces[i].samples(), run.trace.samples());
  }
}

TEST(BatchRunner, ExplicitInputListKeepsOrder) {
  std::vector<BatchInput> inputs;
  for (std::uint64_t i = 0; i < 5; ++i) inputs.push_back({kKey, 100 + i});
  BatchRunner runner(device(), config(3));
  const analysis::TraceSet set = runner.capture(inputs);
  ASSERT_EQ(set.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(set.inputs[i], inputs[i].plaintext);
  }
}

TEST(BatchRunner, CaptureEachEmitsInStrictIndexOrder) {
  BatchRunner runner(device(), config(4));
  std::size_t expected = 0;
  runner.capture_each(kTraces, random_plaintexts(kKey, kSeed),
                      [&](std::size_t i, const BatchInput&, EncryptionRun&) {
                        EXPECT_EQ(i, expected);
                        ++expected;
                      });
  EXPECT_EQ(expected, kTraces);
}

TEST(BatchRunner, StatsAggregateInSerialOrder) {
  BatchRunner serial(device(), config(1));
  (void)serial.capture(kTraces, random_plaintexts(kKey, kSeed));
  BatchRunner parallel(device(), config(4));
  (void)parallel.capture(kTraces, random_plaintexts(kKey, kSeed));
  const BatchStats& a = serial.stats();
  const BatchStats& b = parallel.stats();
  EXPECT_EQ(a.encryptions, kTraces);
  EXPECT_EQ(b.encryptions, kTraces);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  // Serial-order accumulation: even the floating-point sums agree exactly.
  EXPECT_EQ(a.total_energy_uj, b.total_energy_uj);
  EXPECT_EQ(a.breakdown.total(), b.breakdown.total());
  EXPECT_EQ(a.total_cycles, kTraces * kStop);
  EXPECT_GT(a.total_energy_uj, 0.0);
}

TEST(BatchRunner, StreamsToFileIdenticalToInMemoryCapture) {
  const std::string path = ::testing::TempDir() + "/batch.emts";
  BatchRunner runner(device(), config(4));
  const BatchStats file_stats = runner.capture_to_file(
      path, kTraces, random_plaintexts(kKey, kSeed));
  EXPECT_EQ(file_stats.encryptions, kTraces);
  const analysis::TraceSet from_file = analysis::load_trace_set(path);
  BatchRunner again(device(), config(1));
  const analysis::TraceSet in_memory =
      again.capture(kTraces, random_plaintexts(kKey, kSeed));
  ASSERT_EQ(from_file.size(), in_memory.size());
  EXPECT_EQ(from_file.inputs, in_memory.inputs);
  for (std::size_t i = 0; i < from_file.size(); ++i) {
    for (std::size_t j = 0; j < from_file.traces[i].size(); ++j) {
      // EMTS stores float32; compare at that precision.
      EXPECT_EQ(from_file.traces[i][j],
                static_cast<double>(static_cast<float>(in_memory.traces[i][j])));
    }
  }
  std::remove(path.c_str());
}

TEST(BatchRunner, EmptyBatchIsANoOp) {
  BatchRunner runner(device(), config(4));
  const analysis::TraceSet set =
      runner.capture(0, random_plaintexts(kKey, kSeed));
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(runner.stats().encryptions, 0u);
}

TEST(BatchRunner, WorkerExceptionPropagatesToCaller) {
  BatchRunner runner(device(), config(4));
  // Plaintext is irrelevant: a generator that throws models a failing
  // acquisition source.
  const InputGenerator poisoned = [](std::size_t i) -> BatchInput {
    if (i == 5) throw std::runtime_error("acquisition failed");
    return {kKey, i};
  };
  EXPECT_THROW((void)runner.capture(kTraces, poisoned), std::runtime_error);
}

TEST(BatchRunner, SinkExceptionStopsTheBatch) {
  BatchRunner runner(device(), config(4));
  EXPECT_THROW(
      runner.capture_each(kTraces, random_plaintexts(kKey, kSeed),
                          [](std::size_t i, const BatchInput&,
                             EncryptionRun&) {
                            if (i == 2) throw std::runtime_error("sink full");
                          }),
      std::runtime_error);
}

TEST(BatchRunner, EffectiveThreadsClampsToBatchSize) {
  BatchRunner runner(device(), config(8));
  EXPECT_EQ(runner.effective_threads(3), 3u);
  EXPECT_EQ(runner.effective_threads(100), 8u);
  EXPECT_GE(runner.effective_threads(1), 1u);
}

}  // namespace
}  // namespace emask::core
