// Tests for the session subsystem: PKCS#7 packing, golden CBC round
// trips, the SessionEngine determinism contract (fork vs cold, any thread
// count), the session campaign axes, and campaign-artifact byte identity.
// All suites are prefixed `Session` so CI's TSan job can select them with
// `ctest -R '^Session'`.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "des/des.hpp"
#include "session/session.hpp"
#include "util/rng.hpp"

namespace emask {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------- padding / packing

TEST(SessionPadding, PacksBigEndianWithPkcs7Tail) {
  const std::vector<std::uint64_t> blocks =
      session::pack_message(std::string_view("ABCDEFGHIJ"));
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], 0x4142434445464748ull);  // "ABCDEFGH"
  // Tail: 'I' 'J' then p = 6 bytes of 0x06 — never a silent zero-pad.
  EXPECT_EQ(blocks[1], 0x494A060606060606ull);
}

TEST(SessionPadding, WholeBlockMessageGainsFullPadBlock) {
  const std::vector<std::uint64_t> blocks =
      session::pack_message(std::string_view("ABCDEFGH"));
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[1], 0x0808080808080808ull)
      << "never a silent zero-pad: exact multiples gain a full pad block";
  const std::vector<std::uint8_t> bytes = session::unpack_message(blocks);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "ABCDEFGH");
}

TEST(SessionPadding, EmptyMessageIsOnePadBlock) {
  const std::vector<std::uint64_t> blocks =
      session::pack_message(std::vector<std::uint8_t>{});
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], 0x0808080808080808ull);
  EXPECT_TRUE(session::unpack_message(blocks).empty());
}

TEST(SessionPadding, UnpackRejectsMalformedPadding) {
  EXPECT_THROW((void)session::unpack_message({}), session::SessionError);
  // Pad value 0 and > 8 are both outside PKCS#7's 1..8 range.
  EXPECT_THROW((void)session::unpack_message({0x4142434445464700ull}),
               session::SessionError);
  EXPECT_THROW((void)session::unpack_message({0x4142434445464709ull}),
               session::SessionError);
  // Trailing bytes must all equal the pad value.
  EXPECT_THROW((void)session::unpack_message({0x4142434445060503ull}),
               session::SessionError);
}

// ------------------------------------------------- golden round trips

TEST(SessionGolden, CbcRoundTripsRandomMessagesBothCiphers) {
  const session::SessionKeys keys{0x0123456789ABCDEFull,
                                  0x23456789ABCDEF01ull,
                                  0x456789ABCDEF0123ull};
  util::Rng rng(0x5E55'0123ull);
  for (const session::SessionCipher cipher :
       {session::SessionCipher::kDesCbc,
        session::SessionCipher::kTdesEdeCbc}) {
    // Message lengths straddle block boundaries: empty, short, exact
    // multiple, and long non-multiples.
    for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                  std::size_t{8}, std::size_t{16},
                                  std::size_t{41}, std::size_t{127}}) {
      std::vector<std::uint8_t> message(len);
      for (std::uint8_t& b : message) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      const std::uint64_t iv = rng.next_u64();
      const std::vector<std::uint64_t> packed =
          session::pack_message(message);
      const std::vector<std::uint64_t> cipher_blocks =
          session::golden_encrypt(cipher, keys, iv, packed);
      const std::vector<std::uint64_t> plain_blocks =
          session::golden_decrypt(cipher, keys, iv, cipher_blocks);
      EXPECT_EQ(plain_blocks, packed);
      EXPECT_EQ(session::unpack_message(plain_blocks), message)
          << "cipher " << session::session_cipher_name(cipher) << " len "
          << len;
    }
  }
}

TEST(SessionGolden, MatchesDesCbcModels) {
  const session::SessionKeys keys{0x133457799BBCDFF1ull,
                                  0x23456789ABCDEF01ull,
                                  0x456789ABCDEF0123ull};
  const std::uint64_t iv = 0xFEDCBA9876543210ull;
  const std::vector<std::uint64_t> blocks = {0x0123456789ABCDEFull,
                                             0x1111111111111111ull,
                                             0xDEADBEEFCAFEF00Dull};
  EXPECT_EQ(session::golden_encrypt(session::SessionCipher::kDesCbc, keys,
                                    iv, blocks),
            des::cbc_encrypt(blocks, keys.k1, iv));
  EXPECT_EQ(session::golden_encrypt(session::SessionCipher::kTdesEdeCbc,
                                    keys, iv, blocks),
            des::cbc_encrypt_ede3(blocks, keys.k1, keys.k2, keys.k3, iv));
}

// ------------------------------------------------- engine contract

session::SessionConfig engine_config(session::SessionCipher cipher) {
  session::SessionConfig cfg;
  cfg.cipher = cipher;
  cfg.keys = {0x133457799BBCDFF1ull, 0x23456789ABCDEF01ull,
              0x456789ABCDEF0123ull};
  cfg.iv = 0xA5A5A5A55A5A5A5Aull;
  cfg.policy = compiler::Policy::kOriginal;
  return cfg;
}

std::vector<std::uint64_t> test_blocks(std::size_t n) {
  std::vector<std::uint64_t> blocks(n);
  for (std::size_t i = 0; i < n; ++i) blocks[i] = util::Rng::nth(0xB10C5, i);
  return blocks;
}

TEST(SessionEngine, EncryptMatchesGoldenAndDecryptRoundTrips) {
  const session::SessionConfig cfg =
      engine_config(session::SessionCipher::kDesCbc);
  const std::vector<std::uint64_t> blocks = test_blocks(3);
  session::SessionEngine engine(cfg);
  const session::SessionResult enc = engine.encrypt(blocks);
  EXPECT_EQ(enc.output,
            session::golden_encrypt(cfg.cipher, cfg.keys, cfg.iv, blocks));
  EXPECT_EQ(enc.blocks.size(), blocks.size());
  EXPECT_EQ(enc.stages, 1u);
  const session::SessionResult dec = engine.decrypt(enc.output);
  EXPECT_EQ(dec.output, blocks);
}

TEST(SessionEngine, TdesEncryptMatchesGolden) {
  const session::SessionConfig cfg =
      engine_config(session::SessionCipher::kTdesEdeCbc);
  const std::vector<std::uint64_t> blocks = test_blocks(2);
  session::SessionEngine engine(cfg);
  const session::SessionResult enc = engine.encrypt(blocks);
  EXPECT_EQ(enc.output,
            session::golden_encrypt(cfg.cipher, cfg.keys, cfg.iv, blocks));
  EXPECT_EQ(enc.stages, 3u);
  EXPECT_EQ(engine.decrypt(enc.output).output, blocks);
}

TEST(SessionEngine, AmortizationAccountingIsConsistent) {
  const std::vector<std::uint64_t> blocks = test_blocks(4);
  session::SessionConfig cfg = engine_config(session::SessionCipher::kDesCbc);
  const session::SessionResult hoisted =
      session::SessionEngine(cfg).encrypt(blocks);
  EXPECT_GT(hoisted.prefix_cycles, 0u);
  EXPECT_EQ(hoisted.cold_cycles,
            hoisted.block_cycles * static_cast<std::uint64_t>(blocks.size()));
  EXPECT_EQ(hoisted.session_cycles,
            hoisted.cold_cycles -
                hoisted.prefix_cycles *
                    static_cast<std::uint64_t>(blocks.size() - 1));
  EXPECT_GT(hoisted.amortized_speedup(), 1.0);

  // The paper's per-block in-round schedule: nothing to hoist, no fork
  // point, a session costs exactly N cold blocks.
  cfg.hoist_key_schedule = false;
  const session::SessionResult cold =
      session::SessionEngine(cfg).encrypt(blocks);
  EXPECT_EQ(cold.prefix_cycles, 0u);
  EXPECT_EQ(cold.session_cycles, cold.cold_cycles);
  EXPECT_DOUBLE_EQ(cold.amortized_speedup(), 1.0);
}

// Captures every per-(stage, block) trace plus the result rows — the full
// externally visible surface that must be capture-mode independent.
struct CapturedSession {
  session::SessionResult result;
  std::vector<std::vector<double>> samples;
};

CapturedSession capture(session::SessionConfig cfg,
                        const std::vector<std::uint64_t>& blocks) {
  CapturedSession out;
  session::SessionEngine engine(cfg);
  out.result = engine.encrypt(
      blocks, [&](const session::BlockEvent&, core::EncryptionRun& run) {
        out.samples.push_back(run.trace.samples());
      });
  return out;
}

void expect_identical(const CapturedSession& a, const CapturedSession& b,
                      const char* what) {
  EXPECT_EQ(a.samples, b.samples) << what;
  EXPECT_EQ(a.result.output, b.result.output) << what;
  ASSERT_EQ(a.result.blocks.size(), b.result.blocks.size()) << what;
  for (std::size_t i = 0; i < a.result.blocks.size(); ++i) {
    EXPECT_EQ(a.result.blocks[i].cycles, b.result.blocks[i].cycles) << what;
    EXPECT_EQ(a.result.blocks[i].energy_uj, b.result.blocks[i].energy_uj)
        << what << " block " << i;
  }
}

TEST(SessionEngine, ForkVsColdCaptureIsByteIdentical) {
  const std::vector<std::uint64_t> blocks = test_blocks(4);
  session::SessionConfig cfg = engine_config(session::SessionCipher::kDesCbc);
  cfg.noise_sigma_pj = 2.0;  // noise must be seeded per block, not per run
  cfg.snapshot = core::SnapshotMode::kRequire;
  const CapturedSession forked = capture(cfg, blocks);
  cfg.snapshot = core::SnapshotMode::kOff;
  const CapturedSession cold = capture(cfg, blocks);
  expect_identical(forked, cold, "fork vs cold");
  // Forked traces report full spliced cycle counts, so the amortization
  // numbers are snapshot-mode independent too.
  EXPECT_EQ(forked.result.session_cycles, cold.result.session_cycles);
  EXPECT_EQ(forked.result.cold_cycles, cold.result.cold_cycles);
}

TEST(SessionEngine, ThreadCountsAreByteIdentical) {
  const std::vector<std::uint64_t> blocks = test_blocks(4);
  session::SessionConfig cfg = engine_config(session::SessionCipher::kDesCbc);
  cfg.noise_sigma_pj = 2.0;
  cfg.threads = 1;
  const CapturedSession one = capture(cfg, blocks);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    cfg.threads = threads;
    const CapturedSession many = capture(cfg, blocks);
    expect_identical(one, many, "thread count");
  }
}

TEST(SessionEngine, TruncatedRunSimulatesOnlyTheAttackWindow) {
  const std::vector<std::uint64_t> blocks = test_blocks(2);
  session::SessionConfig cfg =
      engine_config(session::SessionCipher::kTdesEdeCbc);
  cfg.stop_after_cycles = 3000;
  session::SessionEngine engine(cfg);
  std::size_t runs = 0;
  const session::SessionResult r = engine.encrypt(
      blocks, [&](const session::BlockEvent& ev, core::EncryptionRun& run) {
        EXPECT_EQ(ev.stage, 0u);
        EXPECT_LE(run.trace.samples().size(), 3000u);
        ++runs;
      });
  EXPECT_EQ(runs, blocks.size()) << "only stage 0 runs when truncated";
  EXPECT_EQ(r.stages, 1u);
}

// ------------------------------------------------- campaign axes

TEST(SessionSpec, UnknownCipherErrorListsSessionNames) {
  try {
    (void)campaign::CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                        "policy = original\n"
                                        "cipher = psychic\n");
    FAIL() << "expected SpecError";
  } catch (const campaign::SpecError& e) {
    const std::string what = e.what();
    for (const char* name : {"des_cbc", "tdes_cbc", "des", "aes"}) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "missing '" << name << "' in: " << what;
    }
  }
}

TEST(SessionSpec, SessionLengthRequiresSessionCipher) {
  try {
    (void)campaign::CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                        "policy = original\ncipher = des\n"
                                        "session_length = 4\n")
        .expand();
    FAIL() << "expected SpecError";
  } catch (const campaign::SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("des_cbc|tdes_cbc"), std::string::npos) << what;
  }
}

TEST(SessionSpec, SessionCipherRejectsNonSessionAnalyses) {
  for (const char* analysis : {"tvla", "second_order"}) {
    try {
      (void)campaign::CampaignSpec::parse(
          std::string("[campaign]\nname = t\n[axes]\n"
                      "policy = original, selective\ncipher = des_cbc\n"
                      "session_length = 4\nanalysis = ") +
          analysis + "\n")
          .expand();
      FAIL() << "expected SpecError for " << analysis;
    } catch (const campaign::SpecError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("energy|dpa|cpa|mlpa|collision"),
                std::string::npos)
          << what;
    }
  }
}

TEST(SessionSpec, SessionTracesMustBeOne) {
  EXPECT_THROW(
      (void)campaign::CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                          "policy = original\n"
                                          "cipher = des_cbc\n"
                                          "session_length = 4\n"
                                          "traces = 8\n")
          .expand(),
      campaign::SpecError)
      << "session_length is the per-block trace axis";
}

TEST(SessionSpec, SessionAttacksNeedAtLeastTwoBlocks) {
  EXPECT_THROW(
      (void)campaign::CampaignSpec::parse("[campaign]\nname = t\n[axes]\n"
                                          "policy = original\n"
                                          "cipher = des_cbc\n"
                                          "analysis = dpa\n")
          .expand(),
      campaign::SpecError);
}

TEST(SessionSpec, ScenarioIdsCarrySessionLengthOnlyForSessions) {
  // Session scenarios insert -s<length> after the trace count; non-session
  // ids keep their historical shape exactly (byte-stable across releases).
  const std::vector<campaign::Scenario> sessions =
      campaign::CampaignSpec::parse(
          "[campaign]\nname = t\n[axes]\npolicy = original\n"
          "cipher = des_cbc\nsession_length = 1, 4\n")
          .expand();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_NE(sessions[0].id.find("-s1-"), std::string::npos)
      << sessions[0].id;
  EXPECT_NE(sessions[1].id.find("-s4-"), std::string::npos)
      << sessions[1].id;

  const std::vector<campaign::Scenario> plain =
      campaign::CampaignSpec::parse(
          "[campaign]\nname = t\n[axes]\npolicy = original\ncipher = des\n")
          .expand();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].id.find("-s"), std::string::npos) << plain[0].id;
  EXPECT_EQ(plain[0].session_length, 1u);
}

TEST(SessionSpec, CipherNameRoundTripsAndErrorsListNames) {
  EXPECT_EQ(session::session_cipher_from_name("des_cbc"),
            session::SessionCipher::kDesCbc);
  EXPECT_EQ(session::session_cipher_from_name("tdes_cbc"),
            session::SessionCipher::kTdesEdeCbc);
  try {
    (void)session::session_cipher_from_name("psychic");
    FAIL() << "expected SessionError";
  } catch (const session::SessionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("des_cbc"), std::string::npos) << what;
    EXPECT_NE(what.find("tdes_cbc"), std::string::npos) << what;
  }
}

TEST(SessionSpec, ManifestMapsSessionArtifacts) {
  EXPECT_EQ(campaign::scenario_blocks_path("0000-x"),
            "scenarios/0000-x/blocks.csv");
  EXPECT_EQ(campaign::scenario_session_path("0000-x"),
            "scenarios/0000-x/session.csv");
}

// ------------------------------------------------- campaign artifacts

// Two energy scenarios (lengths 1 and 4) — small enough for TSan, yet
// exercising the full session scenario path including blocks.csv and
// session.csv emission.
constexpr const char* kSessionSpec =
    "[campaign]\n"
    "name = session_artifacts\n"
    "[axes]\n"
    "policy = original\n"
    "cipher = des_cbc\n"
    "analysis = energy\n"
    "session_length = 1, 4\n";

std::vector<fs::path> scenario_files(const fs::path& dir, const char* name) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir / "scenarios")) {
    const fs::path csv = entry.path() / name;
    if (fs::exists(csv)) files.push_back(csv);
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(SessionCampaign, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const campaign::CampaignSpec spec =
      campaign::CampaignSpec::parse(kSessionSpec);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_sess_jobs";
  fs::remove_all(base);

  std::vector<fs::path> dirs;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    campaign::RunnerOptions options;
    options.out_dir = (base / ("j" + std::to_string(jobs))).string();
    options.jobs = jobs;
    options.quiet = true;
    EXPECT_TRUE(campaign::CampaignRunner(spec, options).run().complete);
    dirs.push_back(options.out_dir);
  }

  for (const char* artifact : {"blocks.csv", "session.csv", "result.csv"}) {
    const auto reference = scenario_files(dirs[0], artifact);
    ASSERT_EQ(reference.size(), 2u) << artifact;
    for (std::size_t d = 1; d < dirs.size(); ++d) {
      const auto other = scenario_files(dirs[d], artifact);
      ASSERT_EQ(other.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(read_file(reference[i]), read_file(other[i]))
            << "mismatch at " << other[i];
      }
    }
  }
  EXPECT_EQ(read_file(dirs[0] / "manifest.json"),
            read_file(dirs[1] / "manifest.json"));
  EXPECT_EQ(read_file(dirs[0] / "manifest.json"),
            read_file(dirs[2] / "manifest.json"));
  fs::remove_all(base);
}

TEST(SessionCampaign, ResumeIsByteIdentical) {
  const campaign::CampaignSpec spec =
      campaign::CampaignSpec::parse(kSessionSpec);
  const fs::path base = fs::path(::testing::TempDir()) / "emask_sess_resume";
  fs::remove_all(base);

  campaign::RunnerOptions straight;
  straight.out_dir = (base / "straight").string();
  straight.jobs = 2;
  straight.quiet = true;
  EXPECT_TRUE(campaign::CampaignRunner(spec, straight).run().complete);

  campaign::RunnerOptions interrupted = straight;
  interrupted.out_dir = (base / "resumed").string();
  interrupted.limit = 1;
  EXPECT_FALSE(campaign::CampaignRunner(spec, interrupted).run().complete);
  interrupted.limit = 0;
  interrupted.resume = true;
  interrupted.jobs = 1;
  const campaign::CampaignReport report =
      campaign::CampaignRunner(spec, interrupted).run();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.resumed, 1u);

  for (const char* artifact : {"blocks.csv", "session.csv"}) {
    const auto reference = scenario_files(base / "straight", artifact);
    const auto resumed = scenario_files(base / "resumed", artifact);
    ASSERT_EQ(reference.size(), 2u) << artifact;
    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(read_file(reference[i]), read_file(resumed[i]))
          << "mismatch at " << resumed[i];
    }
  }
  EXPECT_EQ(read_file(base / "straight" / "manifest.json"),
            read_file(base / "resumed" / "manifest.json"));
  fs::remove_all(base);
}

TEST(SessionCampaign, AttackDisclosureIsByteIdenticalAcrossJobs) {
  // One DPA scenario over a 16-block session: the per-block traces feed
  // the attack with des_input = P_i ^ C_{i-1}, and disclosure.csv must be
  // job-count independent like every other artifact.
  const campaign::CampaignSpec spec = campaign::CampaignSpec::parse(
      "[campaign]\nname = session_attack\n[axes]\n"
      "policy = original\ncipher = des_cbc\nanalysis = dpa\n"
      "session_length = 16\n");
  const fs::path base = fs::path(::testing::TempDir()) / "emask_sess_attack";
  fs::remove_all(base);

  std::vector<fs::path> dirs;
  for (const std::size_t jobs : {1u, 4u}) {
    campaign::RunnerOptions options;
    options.out_dir = (base / ("j" + std::to_string(jobs))).string();
    options.jobs = jobs;
    options.quiet = true;
    EXPECT_TRUE(campaign::CampaignRunner(spec, options).run().complete);
    dirs.push_back(options.out_dir);
  }
  for (const char* artifact : {"disclosure.csv", "blocks.csv"}) {
    const auto reference = scenario_files(dirs[0], artifact);
    ASSERT_EQ(reference.size(), 1u) << artifact;
    const auto other = scenario_files(dirs[1], artifact);
    ASSERT_EQ(other.size(), 1u);
    EXPECT_EQ(read_file(reference[0]), read_file(other[0]));
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace emask
