#!/usr/bin/env python3
"""Plot the reproduced figures from the bench_out/ CSV series.

Usage: after running the bench binaries (which write bench_out/*.csv next
to the build directory), run

    python3 scripts/plot_figures.py path/to/bench_out [outdir]

One PNG per figure.  Requires matplotlib; the C++ benches do not (the CSVs
are the primary artifact, plotting is a convenience).
"""
import csv
import pathlib
import sys

try:
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib not available; the CSVs in bench_out/ are the data")

SERIES = {
    "fig06_energy_trace.csv": ("Figure 6: energy trace (16 rounds visible)",
                               "cycle", "pJ/cycle (100-cycle window)"),
    "fig07_key_bit_diff_round1.csv": ("Figure 7: 1-bit key differential, round 1",
                                      "cycle", "diff (pJ)"),
    "fig08_key_diff_before.csv": ("Figure 8: key differential before masking",
                                  "cycle", "diff (pJ)"),
    "fig09_key_diff_after.csv": ("Figure 9: key differential after masking",
                                 "cycle", "diff (pJ)"),
    "fig10_plaintext_diff_before.csv": ("Figure 10: plaintext differential before masking",
                                        "cycle", "diff (pJ)"),
    "fig11_plaintext_diff_after.csv": ("Figure 11: plaintext differential after masking",
                                       "cycle", "diff (pJ)"),
    "fig12_masking_overhead.csv": ("Figure 12: masking overhead during PC-1",
                                   "cycle", "overhead (pJ/cycle)"),
}


def main() -> None:
    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_out")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else src)
    out.mkdir(parents=True, exist_ok=True)
    for name, (title, xlabel, ylabel) in SERIES.items():
        path = src / name
        if not path.exists():
            print(f"skip {name} (not found; run the bench first)")
            continue
        with path.open() as f:
            rows = list(csv.reader(f))
        xs = [float(r[0]) for r in rows[1:]]
        ys = [float(r[1]) for r in rows[1:]]
        fig, ax = plt.subplots(figsize=(9, 3))
        ax.plot(xs, ys, linewidth=0.6)
        ax.set_title(title)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        fig.tight_layout()
        png = out / (path.stem + ".png")
        fig.savefig(png, dpi=150)
        plt.close(fig)
        print(f"wrote {png}")


if __name__ == "__main__":
    main()
